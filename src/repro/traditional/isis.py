"""The Isis architecture (Fig. 1): Membership → View Synchrony → Atomic
Broadcast, bottom-up.

Layering (Section 2.1.1):

* the **group membership** layer maintains the member list, handles
  joins/leaves and *excludes suspected processes* (suspicion and
  exclusion are one and the same — the coupling of Section 2.3.1);
* the **view synchrony** layer gives broadcast semantics relative to
  views (flush protocol, sending view delivery — senders block during
  view changes);
* **atomic broadcast** on top is a fixed sequencer over the
  view-synchronous broadcast; it blocks when the sequencer crashes until
  the membership below installs a new view (Section 2.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.abcast.sequencer import SequencerAtomicBroadcast
from repro.fd.heartbeat import HeartbeatFailureDetector
from repro.membership.view import View
from repro.net.message import AppMessage
from repro.net.reliable import ReliableChannel
from repro.sim.process import Process
from repro.sim.world import World
from repro.traditional.gm_membership import TraditionalMembership
from repro.traditional.view_synchrony import ViewSynchrony


@dataclass(frozen=True)
class IsisConfig:
    """Tuning knobs of the Isis stack.

    ``exclusion_timeout`` is the SINGLE failure-detection timeout: it
    controls both how fast crashes are detected and how easily correct
    processes get excluded — the trade-off of Section 4.3.
    """

    heartbeat_interval: float = 10.0
    exclusion_timeout: float = 500.0
    retransmit_interval: float = 20.0
    kill_on_exclusion: bool = True


class IsisStack:
    """All Fig. 1 layers of one process."""

    def __init__(
        self,
        process: Process,
        initial_members: list[str],
        config: IsisConfig | None = None,
        is_member: bool = True,
    ) -> None:
        self.process = process
        self.config = config or IsisConfig()
        cfg = self.config
        initial_view = View.initial(initial_members) if is_member else None

        self.channel = ReliableChannel(process, retransmit_interval=cfg.retransmit_interval)
        self.vs = ViewSynchrony(process, self.channel, initial_view)
        self.fd = HeartbeatFailureDetector(
            process, self.vs.current_members, heartbeat_interval=cfg.heartbeat_interval
        )
        self.gm = TraditionalMembership(
            process,
            self.channel,
            self.vs,
            self.fd,
            exclusion_timeout=cfg.exclusion_timeout,
            kill_on_exclusion=cfg.kill_on_exclusion,
        )
        self.abcast = SequencerAtomicBroadcast(
            process, self.channel, self.vs, self.vs.current_view
        )
        self.vs.on_new_view(self.abcast.on_view_change)

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    @property
    def pid(self) -> str:
        return self.process.pid

    def abcast_payload(self, payload: Any) -> AppMessage:
        message = self.process.msg_ids.message(payload)
        self.abcast.abcast(message)
        return message

    def on_adeliver(self, callback: Callable[[AppMessage], None]) -> None:
        self.abcast.on_adeliver(callback)

    def vs_bcast(self, tag: str, payload: Any) -> None:
        self.vs.bcast(tag, payload)

    def view(self) -> View | None:
        return self.vs.current_view()

    def delivered_payloads(self) -> list[Any]:
        return [m.payload for m in self.abcast.delivered_log]

    #: Layer inventory used by the Fig. 1 bench and the complexity bench:
    #: which layers of this stack solve an ordering problem.
    LAYERS = ["membership", "view synchrony", "atomic broadcast"]
    ORDERING_SOLVERS = [
        "membership (orders views)",
        "view synchrony (orders messages vs. view changes)",
        "atomic broadcast (orders messages)",
    ]


def build_isis_group(
    world: World, count: int, config: IsisConfig | None = None
) -> dict[str, IsisStack]:
    pids = world.spawn(count)
    return {pid: IsisStack(world.process(pid), pids, config=config) for pid in pids}


def add_isis_joiner(
    world: World, stacks: dict[str, IsisStack], config: IsisConfig | None = None
) -> IsisStack:
    index = len(world.processes)
    (pid,) = world.spawn(1, start_index=index)
    stack = IsisStack(world.process(pid), [], config=config, is_member=False)
    stacks[pid] = stack
    return stack

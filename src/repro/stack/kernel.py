"""The composition kernel: routes events through an ordered layer list.

Layers are listed bottom (index 0) to top.  An event routed below index 0
either *bounces* (stability notifications — Section 2.2 of the paper) or
reaches the network adapter: ``cast`` events are broadcast to the current
group and ``pt2pt`` events are sent to their destination, both over the
process's reliable channel; incoming packets re-enter the stack at the
bottom as ``deliver`` events.  Events leaving the top of the stack are
dropped (with a trace record).

The kernel counts every layer visit (``ens.event_hops``) — the metric the
Fig. 5 bench uses to show why Ensemble places the application *below* the
membership components: fewer hops on the hot path (the paper: "it would
take more time to convey events from the network level to the
application").
"""

from __future__ import annotations

from typing import Any

from repro.net.reliable import ReliableChannel
from repro.sim.process import Component, Process
from repro.stack.events import CAST, DELIVER, PT2PT, UP, Event
from repro.stack.layer import Layer

NET_PORT = "ens"


class StackKernel(Component):
    """Hosts a composed protocol stack on one process."""

    def __init__(
        self,
        process: Process,
        channel: ReliableChannel,
        layers: list[Layer],
        group_provider,
    ) -> None:
        super().__init__(process, "stack")
        self.channel = channel
        self.layers = layers
        self.group_provider = group_provider
        self._taps: list = []
        for index, layer in enumerate(layers):
            layer.attach(self, index)
        self.register_port(NET_PORT, self._on_packet)

    def start(self) -> None:
        for layer in self.layers:
            layer.start()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def add_tap(self, tap) -> None:
        """Observe every event hop without perturbing routing.

        ``tap(event, index)`` is called just before the layer at
        ``index`` handles ``event`` — exploration harnesses and tests use
        this to watch a live stack's internal traffic (the tap must not
        mutate the event).  Taps run in registration order.
        """
        self._taps.append(tap)

    def route(self, event: Event, index: int) -> None:
        """Deliver ``event`` to the layer at ``index`` (or the edges)."""
        if index < 0:
            self._bottom(event)
            return
        if index >= len(self.layers):
            self.trace("event_exited_top", type=event.type)
            return
        for tap in self._taps:
            tap(event, index)
        self.world.metrics.counters.inc("ens.event_hops")
        layer = self.layers[index]
        if event.direction == UP:
            layer.on_up(event)
        else:
            layer.on_down(event)

    def inject(self, layer: Layer, event: Event) -> None:
        """Start an event's journey at ``layer`` (exclusive)."""
        if event.direction == UP:
            self.route(event, layer.index + 1)
        else:
            self.route(event, layer.index - 1)

    # ------------------------------------------------------------------
    # Bottom edge: network adapter + bounce
    # ------------------------------------------------------------------
    def _bottom(self, event: Event) -> None:
        if event.bounce:
            # Reverse direction: travel back up through every layer.
            event.direction = UP
            event.bounce = False
            self.world.metrics.counters.inc("ens.bounces")
            self.route(event, 0)
            return
        if event.type == CAST:
            for member in self.group_provider():
                self.channel.send(member, NET_PORT, ("cast", self.pid, dict(event.fields)))
        elif event.type == PT2PT:
            dst = event["dst"]
            self.channel.send(dst, NET_PORT, ("pt2pt", self.pid, dict(event.fields)))
        else:
            self.trace("event_exited_bottom", type=event.type)

    def _on_packet(self, src: str, packet: tuple) -> None:
        kind, origin, fields = packet
        fields = dict(fields)
        fields["origin"] = origin
        self.world.metrics.counters.inc("ens.packets_in")
        self.route(Event(DELIVER, UP, fields), 0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def layer_names(self) -> list[str]:
        return [layer.name for layer in self.layers]

    def layer(self, name: str) -> Layer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(name)

    def schedule_for(self, layer: Layer, delay: float, callback, *args: Any):
        return self.schedule(delay, callback, *args)

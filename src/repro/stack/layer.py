"""Layer base class for the modular protocol stack."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.stack.events import DOWN, UP, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.stack.kernel import StackKernel


class Layer:
    """One protocol module in a composed stack.

    Subclasses override :meth:`on_up` / :meth:`on_down` and either pass
    the event on (``self.pass_on(event)``), consume it (return without
    re-emitting), or emit new events with :meth:`emit_up` /
    :meth:`emit_down`.  The kernel wires ``self.kernel`` and
    ``self.index`` before any event flows.
    """

    name = "layer"

    def __init__(self) -> None:
        self.kernel: "StackKernel | None" = None
        self.index: int = -1

    # Wiring ------------------------------------------------------------
    def attach(self, kernel: "StackKernel", index: int) -> None:
        self.kernel = kernel
        self.index = index

    @property
    def pid(self) -> str:
        return self.kernel.pid

    @property
    def now(self) -> float:
        return self.kernel.now

    def start(self) -> None:
        """Called once when the hosting kernel starts."""

    # Event handling (default: transparent) ------------------------------
    def on_up(self, event: Event) -> None:
        self.pass_on(event)

    def on_down(self, event: Event) -> None:
        self.pass_on(event)

    # Emission helpers ----------------------------------------------------
    def pass_on(self, event: Event) -> None:
        """Forward the event in its current direction."""
        if event.direction == UP:
            self.kernel.route(event, self.index + 1)
        else:
            self.kernel.route(event, self.index - 1)

    def emit_up(self, event_type: str, **fields) -> None:
        self.kernel.route(Event(event_type, UP, fields), self.index + 1)

    def emit_down(self, event_type: str, bounce: bool = False, **fields) -> None:
        self.kernel.route(Event(event_type, DOWN, fields, bounce=bounce), self.index - 1)

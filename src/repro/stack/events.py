"""Events routed through the modular protocol stack (Ensemble/Appia style).

The paper's conclusion notes the authors implemented the new architecture
in two protocol-composition frameworks (Appia and Cactus), where modules
share protocol code and differ only in how *events* are routed.  This
module defines the event model of our own small composition kernel,
which is used to express the Ensemble baseline of Fig. 5.

Events travel ``down`` (towards the network) or ``up`` (towards the top
of the stack).  A layer may pass an event on, consume it, transform it,
or emit new events in either direction.  Some events *bounce*: they
travel down to the bottom of the stack and then back up — the paper
describes exactly this pattern for Ensemble's stability notifications
(Section 2.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

DOWN = "down"
UP = "up"

_counter = itertools.count()


@dataclass
class Event:
    """One event traveling through a protocol stack."""

    type: str
    direction: str
    fields: dict[str, Any] = field(default_factory=dict)
    #: Bouncing events reverse direction at the bottom instead of exiting.
    bounce: bool = False
    uid: int = field(default_factory=lambda: next(_counter))

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extras = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"Event({self.type}, {self.direction}, {extras})"


# Common event types of the Ensemble sample stack (Fig. 5).
CAST = "cast"            # down: application multicast request
DELIVER = "deliver"      # up: a multicast arriving from the network
APP_DELIVER = "app_deliver"  # up: totally-ordered delivery for the app
PT2PT = "pt2pt"          # down: point-to-point send (field: dst)
STABLE = "stable"        # down then bounce up: stability notification
SUSPECT = "suspect"      # up: failure-detector suspicion
BLOCK = "block"          # down: Sync blocks the group during view change
UNBLOCK = "unblock"      # down: Sync releases the group
VIEW = "view"            # both: a new view is being installed

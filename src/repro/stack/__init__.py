"""Protocol composition kernel (Appia/Ensemble-style event routing)."""

from repro.stack.events import DOWN, UP, Event
from repro.stack.kernel import StackKernel
from repro.stack.layer import Layer

__all__ = ["DOWN", "Event", "Layer", "StackKernel", "UP"]

"""repro — a reproduction of *A Step Towards a New Generation of Group
Communication Systems* (Mena, Schiper, Wojciechowski, Middleware 2003).

The package implements the paper's new **AB-GB architecture** — atomic
broadcast as the basic component, generic broadcast instead of view
synchrony, group membership on top, monitoring decoupled from failure
detection — together with faithful re-implementations of the traditional
architectures it compares against (Isis, Phoenix, RMP, Totem, Ensemble)
and the replication techniques of Section 3.2.2 (active replication,
passive replication over generic broadcast).

Quickstart::

    from repro import World, build_new_group, GroupCommunication

    world = World(seed=7)
    stacks = build_new_group(world, 3)
    apis = {pid: GroupCommunication(stack) for pid, stack in stacks.items()}
    apis["p00"].abcast("hello, group")
    world.run_for(500.0)
    assert all(api.delivered_payloads() == ["hello, group"] for api in apis.values())
"""

from repro.checkers import CheckResult, app_history, check_all
from repro.core.api import GroupCommunication
from repro.core.new_stack import (
    NewArchitectureStack,
    StackConfig,
    add_joiner,
    build_new_group,
    enable_recovery,
)
from repro.fd.adaptive import adaptive_monitor
from repro.gbcast.conflict import (
    PASSIVE_REPLICATION,
    RBCAST_ABCAST,
    ConflictRelation,
    bank_relation,
)
from repro.gbcast.fifo import FifoSender
from repro.membership.view import View
from repro.monitoring.component import MonitoringPolicy
from repro.net.message import AppMessage, MsgId
from repro.sim.world import World, make_pid

__version__ = "1.0.0"

__all__ = [
    "AppMessage",
    "CheckResult",
    "ConflictRelation",
    "FifoSender",
    "GroupCommunication",
    "MonitoringPolicy",
    "MsgId",
    "NewArchitectureStack",
    "PASSIVE_REPLICATION",
    "RBCAST_ABCAST",
    "StackConfig",
    "View",
    "World",
    "adaptive_monitor",
    "add_joiner",
    "app_history",
    "bank_relation",
    "build_new_group",
    "check_all",
    "enable_recovery",
    "make_pid",
    "__version__",
]

"""Heartbeat failure detector with per-client monitors.

A single failure-detection component per process records when each peer
was last heard and broadcasts heartbeats on the *unreliable* transport.
Clients (consensus, the monitoring component, membership layers of the
traditional stacks) each create a :class:`Monitor` with their own timeout
— this is the ``start_stop_monitor`` interface of Fig. 9 and the basis of
Section 3.3.2: consensus can use a small timeout (seconds) while the
monitoring component uses a large one (minutes), over the same liveness
evidence.

**Traffic-aware liveness.**  Explicit heartbeats are the *idle-link
fallback*, not the only evidence:

* a **liveness tap** registered on the transport refreshes ``last_heard``
  for every datagram received from a peer — an rc segment, rbcast gossip,
  a gbcast ack or a consensus round all prove the sender alive (the
  paper's §3.3.2 observation that *any* received message is liveness
  evidence, here applied at the transport).  The transport's incarnation
  fence runs first, so a stale pre-crash datagram can never vouch for a
  recovered process; the tap re-checks the incarnation anyway for
  directly injected traffic.
* with ``suppression`` on, the per-peer heartbeat send is **skipped**
  whenever we sent that peer any datagram within
  ``hb_idle_factor * heartbeat_interval`` ms — our outbound traffic
  already proves our liveness to them.  Under load the O(n) periodic
  broadcast collapses to sends on idle links only; a crashed peer's
  links go idle immediately (it sends nothing), so time-to-suspect is
  unchanged.
* the reliable channel piggybacks the sender's current **hb-epoch**
  (``current_hb_epoch``, bumped once per beat) on its datagrams and
  feeds received epochs back via :meth:`note_piggyback_sample`.  The
  arrival-gap estimator samples at most once per (peer, epoch), so the
  adaptive detector keeps seeing one sample per heartbeat period —
  whether the sample arrived as an explicit heartbeat or on the back of
  application traffic.

The detector is unreliable in the sense of Chandra–Toueg [10]: it can
suspect correct processes (small timeouts, message loss, partitions) and
revises its output when evidence arrives — the behaviour assumed of
◇S.  Nothing emulates a perfect detector here; the *traditional* stacks
obtain P-like behaviour the way the paper describes: by killing/excluding
suspected processes (Section 3.1.1).  They are built with ``suppression``
off, preserving the paper's constant heartbeat stream for comparison.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.sim.process import Component, Process

PORT = "fd.hb"

PeerProvider = Callable[[], list[str]]
SuspicionCallback = Callable[[str], None]
ReincarnationCallback = Callable[[str, int], None]


class Monitor:
    """One client's view of the failure detector.

    ``suspects`` is the current set of suspected peers; ``on_suspect`` /
    ``on_trust`` fire on transitions.  Monitors can be stopped (Fig. 9's
    ``start_stop_monitor``).
    """

    def __init__(
        self,
        detector: "HeartbeatFailureDetector",
        peers: PeerProvider,
        timeout: float,
        on_suspect: SuspicionCallback | None = None,
        on_trust: SuspicionCallback | None = None,
    ) -> None:
        self._detector = detector
        self._peers = peers
        self.timeout = timeout
        self._on_suspect = on_suspect
        self._on_trust = on_trust
        self.suspects: set[str] = set()
        self.active = True
        self._started_at = detector.now
        #: When each peer (re-)entered the monitored set.  A peer that
        #: joins (or a recovered process re-admitted to the view) gets a
        #: full timeout of grace from that moment — without this, a
        #: stale ``last_heard`` from before its crash would make the
        #: monitor re-suspect it the instant it re-enters the view.
        self._member_since: dict[str, float] = {}

    def stop(self) -> None:
        self.active = False

    def restart(self) -> None:
        self.active = True
        self._started_at = self._detector.now
        self.suspects.clear()
        self._member_since.clear()

    def suspected(self, pid: str) -> bool:
        return pid in self.suspects

    def timeout_for(self, peer: str) -> float:
        """Current timeout applied to ``peer`` (constant here; adaptive
        monitors override this)."""
        return self.timeout

    def _check(self) -> None:
        if not self.active:
            return
        now = self._detector.now
        peers = set(self._peers())
        peers.discard(self._detector.pid)
        # Peers that left the monitored set are forgotten — including
        # their membership baseline, so a later re-entry (rejoin after
        # recovery) starts a fresh grace period.
        for gone in [p for p in self.suspects if p not in peers]:
            self.suspects.discard(gone)
        for gone in [p for p in self._member_since if p not in peers]:
            del self._member_since[gone]
        for peer in sorted(peers):
            since = self._member_since.setdefault(peer, now)
            last = self._detector.last_heard(peer)
            if last is None or last < since:
                last = since
            silent_for = now - last
            if silent_for > self.timeout_for(peer):
                if peer not in self.suspects:
                    self.suspects.add(peer)
                    self._detector.trace("suspect", peer=peer, timeout=self.timeout)
                    if self._on_suspect is not None:
                        self._on_suspect(peer)
            elif peer in self.suspects:
                self.suspects.discard(peer)
                self._detector.trace("trust", peer=peer, timeout=self.timeout)
                if self._on_trust is not None:
                    self._on_trust(peer)


class HeartbeatFailureDetector(Component):
    """Shared liveness evidence + any number of per-client monitors."""

    def __init__(
        self,
        process: Process,
        peer_provider: PeerProvider,
        heartbeat_interval: float = 10.0,
        suppression: bool = False,
        hb_idle_factor: float = 1.0,
    ) -> None:
        super().__init__(process, "fd")
        self.peer_provider = peer_provider
        self.heartbeat_interval = heartbeat_interval
        #: Heartbeat suppression: skip the explicit heartbeat to peers we
        #: sent any datagram within ``hb_idle_factor * heartbeat_interval``
        #: ms.  Off by default (the paper's constant stream); the new
        #: architecture stack turns it on via ``StackConfig``.
        self.suppression = suppression
        self.hb_idle_factor = hb_idle_factor
        self._last_heard: dict[str, float] = {}
        self._arrival_gaps: dict[str, deque[float]] = {}
        #: Estimator sampling state, separate from ``last_heard``: gaps
        #: are sampled at most once per (peer, hb-epoch) so tap refreshes
        #: from bursty application traffic cannot pollute the arrival
        #: statistics the adaptive timeouts are built on.
        self._last_sample_time: dict[str, float] = {}
        self._last_sample_epoch: dict[str, int] = {}
        self._incarnations: dict[str, int] = {}
        self._reincarnation_listeners: list[ReincarnationCallback] = []
        self._monitors: list[Monitor] = []
        self._hb_epoch = 0
        # Bound handles: one increment per datagram-scale event — the
        # dominant background work in long runs.
        counters = process.world.metrics.counters
        self._inc_heartbeats = counters.handle("fd.heartbeats_sent")
        self._inc_explicit = counters.handle("fd.explicit_hb")
        self._inc_suppressed = counters.handle("fd.suppressed")
        self._inc_tap = counters.handle("fd.tap_refreshes")
        self._inc_piggyback = counters.handle("fd.piggyback_samples")
        self.register_port(PORT, self._on_heartbeat)
        process.world.transport.register_liveness_sink(process, self._on_traffic)

    def start(self) -> None:
        self._beat()

    # ------------------------------------------------------------------
    # Client interface (Fig. 9: start_stop_monitor / suspect)
    # ------------------------------------------------------------------
    def monitor(
        self,
        peers: PeerProvider | list[str],
        timeout: float,
        on_suspect: SuspicionCallback | None = None,
        on_trust: SuspicionCallback | None = None,
    ) -> Monitor:
        """Create and start a monitor with its own timeout."""
        if isinstance(peers, list):
            fixed = list(peers)
            provider: PeerProvider = lambda: fixed
        else:
            provider = peers
        mon = Monitor(self, provider, timeout, on_suspect, on_trust)
        self._monitors.append(mon)
        return mon

    def last_heard(self, pid: str) -> float | None:
        return self._last_heard.get(pid)

    def incarnation_of(self, pid: str) -> int | None:
        """Highest incarnation heard from ``pid`` (None = never heard)."""
        return self._incarnations.get(pid)

    def current_hb_epoch(self) -> int:
        """The heartbeat epoch, bumped once per beat tick.  The reliable
        channel stamps it on outgoing datagrams so receivers can sample
        arrival gaps even when explicit heartbeats are suppressed."""
        return self._hb_epoch

    def on_reincarnation(self, listener: ReincarnationCallback) -> None:
        """Register ``listener(pid, incarnation)`` fired when liveness
        evidence from a peer carries a higher incarnation than previously
        seen — i.e. the peer crashed and recovered.  The monitoring
        component uses this to drop stale suspicion evidence instead of
        excluding the recovered process (Section 4.3 re-admission)."""
        self._reincarnation_listeners.append(listener)

    # ------------------------------------------------------------------
    # Heartbeat machinery
    # ------------------------------------------------------------------
    def _beat(self) -> None:
        self._hb_epoch += 1
        payload = (self.process.incarnation, self._hb_epoch)
        suppress_within = self.hb_idle_factor * self.heartbeat_interval
        transport = self.world.transport
        now = self.now
        for peer in self.peer_provider():
            if peer == self.pid:
                continue
            if self.suppression:
                sent = transport.last_sent(self.pid, peer)
                if sent is not None and now - sent < suppress_within:
                    # The link is warm: our own traffic within the last
                    # period already proved our liveness to this peer.
                    self._inc_suppressed()
                    continue
            self._inc_heartbeats()
            self._inc_explicit()
            self.world.u_send(self.pid, peer, PORT, payload, layer="fd")
        for mon in self._monitors:
            mon._check()
        self.schedule(self.heartbeat_interval, self._beat)

    def arrival_gaps(self, pid: str) -> list[float]:
        """Recent heartbeat-epoch inter-arrival gaps (ms) for ``pid``."""
        return list(self._arrival_gaps.get(pid, ()))

    # ------------------------------------------------------------------
    # Liveness evidence (heartbeats, tap, piggybacked epochs)
    # ------------------------------------------------------------------
    def _note_incarnation(self, src: str, incarnation: int) -> bool:
        """Track ``src``'s incarnation; False fences out stale evidence.

        A fresh incarnation means the peer crashed and came back: gap
        statistics across the outage are meaningless, and everyone
        listening (monitoring) gets a chance to un-suspect it.  Evidence
        from a *lower* incarnation than already seen is a stale pre-crash
        datagram — it must never vouch for the recovered process.
        """
        known = self._incarnations.get(src)
        if known is None:
            self._incarnations[src] = incarnation
            return True
        if incarnation < known:
            return False
        if incarnation > known:
            self._incarnations[src] = incarnation
            self._arrival_gaps.pop(src, None)
            self._last_heard.pop(src, None)  # the outage gap is not a sample
            self._last_sample_time.pop(src, None)
            self._last_sample_epoch.pop(src, None)
            self.trace("reincarnated", peer=src, incarnation=incarnation)
            for listener in self._reincarnation_listeners:
                listener(src, incarnation)
        return True

    def _note_sample(self, src: str, epoch: int | None) -> None:
        """Record one arrival-gap sample, at most once per (peer, epoch).

        ``epoch=None`` (legacy bare heartbeats, direct injection in
        tests) always samples — the pre-epoch behaviour.
        """
        if epoch is not None:
            last_epoch = self._last_sample_epoch.get(src)
            if last_epoch is not None and epoch <= last_epoch:
                return
            self._last_sample_epoch[src] = epoch
        previous = self._last_sample_time.get(src)
        if previous is not None:
            self._arrival_gaps.setdefault(src, deque(maxlen=32)).append(
                self.now - previous
            )
        self._last_sample_time[src] = self.now

    def _on_heartbeat(self, src: str, payload) -> None:
        if isinstance(payload, tuple):
            incarnation, epoch = payload
        else:  # legacy bare-incarnation payload (direct injection)
            incarnation, epoch = payload or 0, None
        if not self._note_incarnation(src, incarnation or 0):
            return
        self._note_sample(src, epoch)
        self._last_heard[src] = self.now
        for mon in self._monitors:
            mon._check()

    def _on_traffic(self, src: str, incarnation: int, port: str) -> None:
        """Transport liveness tap: any delivered datagram refreshes
        ``last_heard`` (explicit heartbeats take the full path above)."""
        if port == PORT or src == self.pid:
            return
        if not self._note_incarnation(src, incarnation):
            return
        self._last_heard[src] = self.now
        self._inc_tap()
        # Targeted re-check: only monitors currently suspecting this peer
        # need to revise — a full _check per datagram would be O(n) on
        # the hot path for nothing.
        for mon in self._monitors:
            if src in mon.suspects:
                mon._check()

    def note_piggyback_sample(self, src: str, incarnation: int, epoch: int) -> None:
        """Feed an hb-epoch header carried by a reliable-channel datagram.

        The first datagram of each of the sender's heartbeat periods acts
        exactly like a heartbeat arrival for the gap estimator, so the
        adaptive timeouts keep converging while explicit heartbeats are
        suppressed.
        """
        if src == self.pid:
            return
        if not self._note_incarnation(src, incarnation):
            return
        self._inc_piggyback()
        self._note_sample(src, epoch)
        self._last_heard[src] = self.now

"""Heartbeat failure detector with per-client monitors.

A single failure-detection component per process broadcasts heartbeats on
the *unreliable* transport and records when each peer was last heard.
Clients (consensus, the monitoring component, membership layers of the
traditional stacks) each create a :class:`Monitor` with their own timeout
— this is the ``start_stop_monitor`` interface of Fig. 9 and the basis of
Section 3.3.2: consensus can use a small timeout (seconds) while the
monitoring component uses a large one (minutes), over the same heartbeat
stream.

The detector is unreliable in the sense of Chandra–Toueg [10]: it can
suspect correct processes (small timeouts, message loss, partitions) and
revises its output when a heartbeat arrives — the behaviour assumed of
◇S.  Nothing emulates a perfect detector here; the *traditional* stacks
obtain P-like behaviour the way the paper describes: by killing/excluding
suspected processes (Section 3.1.1).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.sim.process import Component, Process

PORT = "fd.hb"

PeerProvider = Callable[[], list[str]]
SuspicionCallback = Callable[[str], None]
ReincarnationCallback = Callable[[str, int], None]


class Monitor:
    """One client's view of the failure detector.

    ``suspects`` is the current set of suspected peers; ``on_suspect`` /
    ``on_trust`` fire on transitions.  Monitors can be stopped (Fig. 9's
    ``start_stop_monitor``).
    """

    def __init__(
        self,
        detector: "HeartbeatFailureDetector",
        peers: PeerProvider,
        timeout: float,
        on_suspect: SuspicionCallback | None = None,
        on_trust: SuspicionCallback | None = None,
    ) -> None:
        self._detector = detector
        self._peers = peers
        self.timeout = timeout
        self._on_suspect = on_suspect
        self._on_trust = on_trust
        self.suspects: set[str] = set()
        self.active = True
        self._started_at = detector.now
        #: When each peer (re-)entered the monitored set.  A peer that
        #: joins (or a recovered process re-admitted to the view) gets a
        #: full timeout of grace from that moment — without this, a
        #: stale ``last_heard`` from before its crash would make the
        #: monitor re-suspect it the instant it re-enters the view.
        self._member_since: dict[str, float] = {}

    def stop(self) -> None:
        self.active = False

    def restart(self) -> None:
        self.active = True
        self._started_at = self._detector.now
        self.suspects.clear()
        self._member_since.clear()

    def suspected(self, pid: str) -> bool:
        return pid in self.suspects

    def timeout_for(self, peer: str) -> float:
        """Current timeout applied to ``peer`` (constant here; adaptive
        monitors override this)."""
        return self.timeout

    def _check(self) -> None:
        if not self.active:
            return
        now = self._detector.now
        peers = set(self._peers())
        peers.discard(self._detector.pid)
        # Peers that left the monitored set are forgotten — including
        # their membership baseline, so a later re-entry (rejoin after
        # recovery) starts a fresh grace period.
        for gone in [p for p in self.suspects if p not in peers]:
            self.suspects.discard(gone)
        for gone in [p for p in self._member_since if p not in peers]:
            del self._member_since[gone]
        for peer in sorted(peers):
            since = self._member_since.setdefault(peer, now)
            last = self._detector.last_heard(peer)
            if last is None or last < since:
                last = since
            silent_for = now - last
            if silent_for > self.timeout_for(peer):
                if peer not in self.suspects:
                    self.suspects.add(peer)
                    self._detector.trace("suspect", peer=peer, timeout=self.timeout)
                    if self._on_suspect is not None:
                        self._on_suspect(peer)
            elif peer in self.suspects:
                self.suspects.discard(peer)
                self._detector.trace("trust", peer=peer, timeout=self.timeout)
                if self._on_trust is not None:
                    self._on_trust(peer)


class HeartbeatFailureDetector(Component):
    """Shared heartbeat stream + any number of per-client monitors."""

    def __init__(
        self,
        process: Process,
        peer_provider: PeerProvider,
        heartbeat_interval: float = 10.0,
    ) -> None:
        super().__init__(process, "fd")
        self.peer_provider = peer_provider
        self.heartbeat_interval = heartbeat_interval
        self._last_heard: dict[str, float] = {}
        self._arrival_gaps: dict[str, deque[float]] = {}
        self._incarnations: dict[str, int] = {}
        self._reincarnation_listeners: list[ReincarnationCallback] = []
        self._monitors: list[Monitor] = []
        # Bound handle: one increment per heartbeat datagram — the
        # dominant background traffic in long runs.
        self._inc_heartbeats = process.world.metrics.counters.handle("fd.heartbeats_sent")
        self.register_port(PORT, self._on_heartbeat)

    def start(self) -> None:
        self._beat()

    # ------------------------------------------------------------------
    # Client interface (Fig. 9: start_stop_monitor / suspect)
    # ------------------------------------------------------------------
    def monitor(
        self,
        peers: PeerProvider | list[str],
        timeout: float,
        on_suspect: SuspicionCallback | None = None,
        on_trust: SuspicionCallback | None = None,
    ) -> Monitor:
        """Create and start a monitor with its own timeout."""
        if isinstance(peers, list):
            fixed = list(peers)
            provider: PeerProvider = lambda: fixed
        else:
            provider = peers
        mon = Monitor(self, provider, timeout, on_suspect, on_trust)
        self._monitors.append(mon)
        return mon

    def last_heard(self, pid: str) -> float | None:
        return self._last_heard.get(pid)

    def incarnation_of(self, pid: str) -> int | None:
        """Highest incarnation heard from ``pid`` (None = never heard)."""
        return self._incarnations.get(pid)

    def on_reincarnation(self, listener: ReincarnationCallback) -> None:
        """Register ``listener(pid, incarnation)`` fired when a peer's
        heartbeat carries a higher incarnation than previously seen —
        i.e. the peer crashed and recovered.  The monitoring component
        uses this to drop stale suspicion evidence instead of excluding
        the recovered process (Section 4.3 re-admission)."""
        self._reincarnation_listeners.append(listener)

    # ------------------------------------------------------------------
    # Heartbeat machinery
    # ------------------------------------------------------------------
    def _beat(self) -> None:
        for peer in self.peer_provider():
            if peer != self.pid:
                self._inc_heartbeats()
                self.world.u_send(
                    self.pid, peer, PORT, self.process.incarnation, layer="fd"
                )
        for mon in self._monitors:
            mon._check()
        self.schedule(self.heartbeat_interval, self._beat)

    def arrival_gaps(self, pid: str) -> list[float]:
        """Recent heartbeat inter-arrival gaps (ms) observed for ``pid``."""
        return list(self._arrival_gaps.get(pid, ()))

    def _on_heartbeat(self, src: str, incarnation: int | None) -> None:
        incarnation = incarnation or 0
        known = self._incarnations.get(src)
        if known is None:
            self._incarnations[src] = incarnation
        elif incarnation > known:
            # Fresh incarnation: the peer crashed and came back.  Gap
            # statistics across the outage are meaningless, and everyone
            # listening (monitoring) gets a chance to un-suspect it.
            self._incarnations[src] = incarnation
            self._arrival_gaps.pop(src, None)
            self._last_heard.pop(src, None)  # the outage gap is not a sample
            self.trace("reincarnated", peer=src, incarnation=incarnation)
            for listener in self._reincarnation_listeners:
                listener(src, incarnation)
        previous = self._last_heard.get(src)
        if previous is not None:
            self._arrival_gaps.setdefault(src, deque(maxlen=32)).append(self.now - previous)
        self._last_heard[src] = self.now
        for mon in self._monitors:
            mon._check()

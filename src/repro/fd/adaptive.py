"""Adaptive failure-detection timeouts.

Section 3.3.2 of the paper stresses that the failure-detection component
serves multiple clients with *different* timeout policies.  Beyond fixed
small/large timeouts, this module provides an adaptive monitor in the
style of Chen/Toueg adaptive failure detectors: the timeout for each peer
tracks the observed heartbeat inter-arrival distribution —

    timeout(peer) = mean_gap(peer) + safety_factor * stddev(peer) + margin

clamped to [min_timeout, max_timeout].  On a quiet LAN the timeout
shrinks towards the heartbeat interval (fast detection); when the link
jitters, it grows automatically (fewer false suspicions) — the knob the
paper's responsiveness argument (Section 4.3) turns by hand.
"""

from __future__ import annotations

import math

from repro.fd.heartbeat import HeartbeatFailureDetector, Monitor, PeerProvider, SuspicionCallback


class AdaptiveMonitor(Monitor):
    """A monitor whose per-peer timeout follows observed arrival gaps."""

    def __init__(
        self,
        detector: HeartbeatFailureDetector,
        peers: PeerProvider,
        safety_factor: float = 4.0,
        margin: float = 5.0,
        min_timeout: float = 20.0,
        max_timeout: float = 5_000.0,
        on_suspect: SuspicionCallback | None = None,
        on_trust: SuspicionCallback | None = None,
    ) -> None:
        super().__init__(detector, peers, max_timeout, on_suspect, on_trust)
        self.safety_factor = safety_factor
        self.margin = margin
        self.min_timeout = min_timeout
        self.max_timeout = max_timeout

    def timeout_for(self, peer: str) -> float:
        gaps = self._detector.arrival_gaps(peer)
        if len(gaps) < 4:
            # Not enough history: be conservative.
            return self.max_timeout
        mean = sum(gaps) / len(gaps)
        variance = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        timeout = mean + self.safety_factor * math.sqrt(variance) + self.margin
        return max(self.min_timeout, min(self.max_timeout, timeout))


def adaptive_monitor(
    detector: HeartbeatFailureDetector,
    peers: PeerProvider | list[str],
    safety_factor: float = 4.0,
    margin: float = 5.0,
    min_timeout: float = 20.0,
    max_timeout: float = 5_000.0,
    on_suspect: SuspicionCallback | None = None,
    on_trust: SuspicionCallback | None = None,
) -> AdaptiveMonitor:
    """Create and register an adaptive monitor on ``detector``."""
    if isinstance(peers, list):
        fixed = list(peers)
        provider: PeerProvider = lambda: fixed
    else:
        provider = peers
    monitor = AdaptiveMonitor(
        detector,
        provider,
        safety_factor=safety_factor,
        margin=margin,
        min_timeout=min_timeout,
        max_timeout=max_timeout,
        on_suspect=on_suspect,
        on_trust=on_trust,
    )
    detector._monitors.append(monitor)
    return monitor

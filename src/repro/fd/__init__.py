"""Unreliable failure detection (heartbeats, per-client monitors)."""

from repro.fd.adaptive import AdaptiveMonitor, adaptive_monitor
from repro.fd.heartbeat import HeartbeatFailureDetector, Monitor

__all__ = ["AdaptiveMonitor", "HeartbeatFailureDetector", "Monitor", "adaptive_monitor"]

"""The monitoring component (Section 3.3.2).

In the new architecture the decision to *exclude* a suspected process is
not made by the group membership component — it is made here, and only
then is the membership's ``remove`` operation called.  Decoupling
suspicion from exclusion is what allows consensus to run with small
failure-detection timeouts while exclusions use large ones
(Section 4.3).

Supported exclusion policies (all from the paper):

* **failure-detector suspicion** with a large timeout (``use_fd``);
* **threshold voting** — exclude ``q`` only after ``votes_required``
  distinct processes also suspect ``q`` ("decide on the removal of q
  only after having learned that a threshold of other processes also
  suspect q");
* **output-triggered suspicion** [12] — the reliable channel reports
  messages stuck in its send buffer (``use_output_triggered``); an
  exclusion is the only way to safely discard them.

The component gossips suspicion votes over reliable channels and calls
``membership.remove`` once the policy threshold is met; on the removal
taking effect it tells the reliable channel to discard the excluded
process's buffer.

Votes are **incarnation-stamped**: each vote carries the suspect's
incarnation as known to the voter, and votes against an incarnation
older than the one the local failure detector has already heard from are
discarded.  With traffic-aware liveness the FD can learn of a recovery
from the first datagram of the new incarnation (a rejoin request, say),
well before any explicit heartbeat — without the stamp, a stale
in-flight vote cast against the dead incarnation could repopulate the
evidence that :meth:`MonitoringComponent._on_reincarnation` just
cleared, and get a freshly recovered process excluded for its
predecessor's silence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fd.heartbeat import HeartbeatFailureDetector
from repro.membership.abcast_membership import AbcastGroupMembership
from repro.net.reliable import ReliableChannel
from repro.sim.process import Component, Process

VOTE_PORT = "mon.vote"


@dataclass(frozen=True)
class MonitoringPolicy:
    """Configuration of the exclusion policy."""

    exclusion_timeout: float = 2_000.0
    votes_required: int = 1
    use_fd: bool = True
    use_output_triggered: bool = False
    output_stuck_timeout: float = 2_000.0

    def __post_init__(self) -> None:
        if self.votes_required < 1:
            raise ValueError("votes_required must be >= 1")
        if not self.use_fd and not self.use_output_triggered:
            raise ValueError("at least one suspicion source must be enabled")


class MonitoringComponent(Component):
    """Decides exclusions; the membership component only executes them."""

    def __init__(
        self,
        process: Process,
        fd: HeartbeatFailureDetector,
        membership: AbcastGroupMembership,
        channel: ReliableChannel,
        policy: MonitoringPolicy | None = None,
    ) -> None:
        super().__init__(process, "monitoring")
        self.policy = policy or MonitoringPolicy()
        self.fd = fd
        self.membership = membership
        self.channel = channel
        self._votes: dict[str, set[str]] = {}
        self._excluded_requested: set[str] = set()
        self.register_port(VOTE_PORT, self._on_vote)
        if self.policy.use_fd:
            self.monitor = fd.monitor(
                membership.current_members,
                self.policy.exclusion_timeout,
                on_suspect=self._on_local_suspicion,
            )
        else:
            self.monitor = None
        if self.policy.use_output_triggered:
            channel.on_stuck(self._on_output_stuck)
        fd.on_reincarnation(self._on_reincarnation)
        membership.on_removal(self._on_removed)

    # ------------------------------------------------------------------
    # Suspicion sources
    # ------------------------------------------------------------------
    def _on_local_suspicion(self, suspect: str) -> None:
        self.trace("fd_suspicion", suspect=suspect)
        self.world.metrics.counters.inc("monitoring.fd_suspicions")
        self._cast_vote(suspect)

    def _on_reincarnation(self, pid: str, incarnation: int) -> None:
        """A fresh incarnation of ``pid`` is heartbeating: suspicion
        evidence gathered against the dead incarnation is void.  Dropping
        it is what lets a recovered (or wrongly suspected and restarted)
        process be re-admitted instead of excluded (Section 4.3)."""
        votes = self._votes.pop(pid, None)
        if votes:
            self.world.metrics.counters.inc("monitoring.suspicions_cleared")
            self.trace("suspicion_cleared", peer=pid, incarnation=incarnation, votes=len(votes))

    def _on_output_stuck(self, dst: str, age: float) -> None:
        if age < self.policy.output_stuck_timeout:
            return
        if dst not in self.membership.current_members():
            return
        self.trace("output_suspicion", suspect=dst, age=age)
        self.world.metrics.counters.inc("monitoring.output_suspicions")
        self._cast_vote(dst)

    # ------------------------------------------------------------------
    # Voting (Section 3.3.2: threshold of other processes also suspect q)
    # ------------------------------------------------------------------
    def _cast_vote(self, suspect: str) -> None:
        members = self.membership.current_members()
        if self.pid not in members:
            # A process that is not (or no longer) a member has no say
            # in exclusions — its evidence is about a group it left.
            return
        if suspect not in members or suspect in self._excluded_requested:
            return
        already_voted = self.pid in self._votes.setdefault(suspect, set())
        self._votes[suspect].add(self.pid)
        if not already_voted:
            stamped = (suspect, self.fd.incarnation_of(suspect) or 0)
            for member in members:
                if member not in (self.pid, suspect):
                    self.channel.send(member, VOTE_PORT, stamped)
        self._maybe_exclude(suspect)

    def _on_vote(self, src: str, payload) -> None:
        # Stamped form (suspect, incarnation); tolerate a bare pid for
        # direct-injection tests and older peers (treated as inc 0).
        suspect, incarnation = payload if isinstance(payload, tuple) else (payload, 0)
        if suspect not in self.membership.current_members():
            return
        known = self.fd.incarnation_of(suspect)
        if known is not None and incarnation < known:
            # Evidence against a dead incarnation: the suspect already
            # recovered past it, the vote must not count.
            self.world.metrics.counters.inc("monitoring.stale_votes_dropped")
            return
        self._votes.setdefault(suspect, set()).add(src)
        self._maybe_exclude(suspect)

    def _maybe_exclude(self, suspect: str) -> None:
        if suspect in self._excluded_requested:
            return
        votes = self._votes.get(suspect, set())
        if self.pid not in votes:
            # Only act once *we* suspect the process too; other
            # processes' votes alone never trigger our remove call.
            return
        if len(votes) >= self.policy.votes_required:
            self._excluded_requested.add(suspect)
            self.world.metrics.counters.inc("monitoring.exclusions_requested")
            self.trace("exclude", suspect=suspect, votes=len(votes))
            self.membership.remove(suspect)

    # ------------------------------------------------------------------
    # Exclusion effects
    # ------------------------------------------------------------------
    def _on_removed(self, pid: str) -> None:
        # The excluded process no longer has to receive buffered
        # messages; discard them (Section 3.3.2, output-triggered case).
        self.channel.discard(pid)
        self._votes.pop(pid, None)
        self._excluded_requested.discard(pid)

"""The monitoring component: exclusion policies decoupled from suspicion."""

from repro.monitoring.component import MonitoringComponent, MonitoringPolicy

__all__ = ["MonitoringComponent", "MonitoringPolicy"]

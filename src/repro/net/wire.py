"""Deterministic wire-byte cost model for simulated datagrams.

The simulator's protocol objects never serialise — payloads travel as
Python structures — so per-datagram *byte* cost must be estimated
structurally.  :func:`wire_size` walks a payload and charges each piece
what a compact binary encoding would: fixed-width scalars, length-prefixed
strings/containers, and a fixed per-datagram header (:data:`HEADER_BYTES`,
an IPv4+UDP-sized envelope).  The estimate is a pure function of the
payload's structure, so two runs of the same seeded scenario produce
identical ``net.bytes.*`` counters — the cost model is part of the
determinism contract, not a profiler.

Large application payloads are modelled with :class:`Blob`: a placeholder
that *sizes* like ``n`` bytes without allocating them, so a 4 KiB-payload
benchmark costs the interpreter nothing beyond a tiny frozen dataclass.
Its ``repr`` is short by construction — traces and span notes record
payload sizes, never bodies.

The same estimate drives the optional bandwidth term of
:class:`repro.net.topology.LinkModel`: with ``bytes_per_ms`` set, a
datagram's transit delay grows by ``wire_size(payload) / bytes_per_ms``,
so large payloads congest links instead of teleporting.  The term is off
by default and adds no RNG draws, leaving same-seed fingerprints
byte-identical unless a scenario opts in.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

#: Fixed per-datagram envelope: IPv4 header (20) + UDP header (8).
HEADER_BYTES = 28

#: Length prefix charged to every variable-length item (str, bytes,
#: container): a compact encoding needs at least a 2-byte length.
LEN_PREFIX = 2

#: Fixed-width scalar costs.
INT_BYTES = 8
FLOAT_BYTES = 8
BOOL_BYTES = 1
NONE_BYTES = 1


@dataclass(frozen=True)
class Blob:
    """A payload placeholder that sizes like ``size`` opaque bytes.

    Workload generators use it to model large application payloads (the
    64 B vs 4 KiB sweep) without allocating or copying real buffers —
    the interpreter cost of a broadcast stays flat while the wire-byte
    cost model charges the full ``size``.
    """

    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"Blob size must be >= 0, got {self.size}")

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"Blob({self.size})"


def payload_size(obj: Any) -> int:
    """Structural byte size of ``obj`` under a compact binary encoding.

    Deterministic and total: unknown objects are sized via their
    dataclass fields when possible, else by the length of their ``str``
    form (stable for the repr-friendly value objects the protocols
    carry).  Containers pay :data:`LEN_PREFIX` plus their items.
    """
    if obj is None:
        return NONE_BYTES
    if obj is True or obj is False:
        return BOOL_BYTES
    t = type(obj)
    if t is int:
        return INT_BYTES
    if t is float:
        return FLOAT_BYTES
    if t is str:
        return LEN_PREFIX + len(obj)
    if t is bytes or t is bytearray:
        return LEN_PREFIX + len(obj)
    if t is Blob:
        return LEN_PREFIX + obj.size
    if t is tuple or t is list:
        total = LEN_PREFIX
        for item in obj:
            total += payload_size(item)
        return total
    if t is dict:
        total = LEN_PREFIX
        for key, value in obj.items():
            total += payload_size(key) + payload_size(value)
        return total
    if t is set or t is frozenset:
        total = LEN_PREFIX
        for item in obj:
            total += payload_size(item)
        return total
    # Slower fallbacks, off the per-datagram hot path for the common
    # wire shapes above: int/float subclasses, dataclasses (MsgId,
    # AppMessage, value objects), then the str form.
    if isinstance(obj, bool):
        return BOOL_BYTES
    if isinstance(obj, int):
        return INT_BYTES
    if isinstance(obj, float):
        return FLOAT_BYTES
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        total = LEN_PREFIX
        for field in dataclasses.fields(obj):
            total += payload_size(getattr(obj, field.name))
        return total
    return LEN_PREFIX + len(str(obj))


def wire_size(payload: Any) -> int:
    """Estimated on-the-wire size of one datagram carrying ``payload``."""
    return HEADER_BYTES + payload_size(payload)

"""Link models and network partitions.

The paper's system model is an asynchronous network with unpredictable
delays, message loss (below the reliable channel) and possible
partitions.  :class:`LinkModel` parameterises one directed link;
:class:`PartitionState` tracks which network components can currently
exchange messages (used by the Phoenix scenario of Section 2.1.2 and by
partition tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class LinkModel:
    """Stochastic behaviour of one directed link.

    delay_min / delay_jitter : uniform delivery delay in [min, min+jitter] ms
    drop_prob                : probability a message is silently lost
    dup_prob                 : probability a message is delivered twice
    bytes_per_ms             : optional bandwidth term — a datagram's
                               transit delay grows by ``size / bytes_per_ms``
                               (size from ``repro.net.wire.wire_size``).
                               ``None`` (the default) keeps delay
                               size-independent, so same-seed fingerprints
                               are unchanged unless a scenario opts in:
                               the term draws no randomness.
    """

    delay_min: float = 1.0
    delay_jitter: float = 1.0
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    bytes_per_ms: float | None = None

    def sample_delay(self, rng: random.Random) -> float:
        if self.delay_jitter <= 0:
            return self.delay_min
        return self.delay_min + rng.random() * self.delay_jitter

    def transmit_ms(self, size: int) -> float:
        """Size-dependent serialisation delay (0.0 with no bandwidth set)."""
        if self.bytes_per_ms is None:
            return 0.0
        return size / self.bytes_per_ms

    def drops(self, rng: random.Random) -> bool:
        return self.drop_prob > 0 and rng.random() < self.drop_prob

    def duplicates(self, rng: random.Random) -> bool:
        return self.dup_prob > 0 and rng.random() < self.dup_prob


#: Loss-free, low-jitter LAN-like link — the common default for benches.
LAN = LinkModel(delay_min=1.0, delay_jitter=1.0, drop_prob=0.0, dup_prob=0.0)

#: A lossy link used by reliability tests (the reliable channel must mask it).
LOSSY = LinkModel(delay_min=1.0, delay_jitter=4.0, drop_prob=0.1, dup_prob=0.05)


class PartitionState:
    """Tracks the current partitioning of processes into components.

    With no partition installed every pair communicates.  ``split``
    installs a partition given as an iterable of process groups; any
    process not mentioned forms its own singleton component.
    """

    def __init__(self) -> None:
        self._component_of: dict[str, int] | None = None

    def split(self, groups: list[list[str]]) -> None:
        mapping: dict[str, int] = {}
        for index, group in enumerate(groups):
            for pid in group:
                if pid in mapping:
                    raise ValueError(f"{pid} appears in more than one partition group")
                mapping[pid] = index
        self._component_of = mapping

    def heal(self) -> None:
        self._component_of = None

    @property
    def partitioned(self) -> bool:
        return self._component_of is not None

    def connected(self, a: str, b: str) -> bool:
        if self._component_of is None:
            return True
        ca = self._component_of.get(a)
        cb = self._component_of.get(b)
        if ca is None or cb is None:
            # Unlisted processes are isolated in their own component.
            return a == b
        return ca == cb

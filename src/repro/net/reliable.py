"""Reliable channel component (Section 3.3.1 of the paper).

Guarantees: if a correct process ``p`` sends ``m`` to a correct process
``q``, then ``q`` eventually receives ``m`` — implemented with sequence
numbers, cumulative acknowledgements and periodic retransmission over the
unreliable transport (the paper implements it over TCP [15]).  Delivery
is FIFO per sender, like TCP.

The channel also implements *output-triggered suspicion* [12]
(Section 3.3.2): if a message stays unacknowledged longer than
``stuck_timeout``, registered listeners (the monitoring component) are
notified.  ``discard(dst)`` drops the send buffer for an excluded
process, which is the paper's reason for coupling the channel to the
monitoring component.  A discard punches a permanent hole in the
connection's sequence space; should the excluded process *rejoin* on
the same connection (crash, late recovery, exclusion, re-join — found
by the schedule explorer as a wedged state snapshot), the sender
answers any acknowledgement stalled below the hole with a ``GAP``
datagram that advances the receiver past it, so the connection heals
instead of buffering the rejoined member's state transfer forever.

Crash recovery: every DATA/ACK carries the sending process's incarnation
number *and* the incarnation it believes the peer to be running (a TCP
implementation gets the equivalent from connection establishment and
teardown).  When a peer shows up with a *higher* incarnation, its old
connection is considered reset: per-peer receive state is cleared and
any unacknowledged messages to it are renumbered from zero onto the new
connection, preserving FIFO order — so reliability holds across the
peer's recovery.  Traffic from a *lower* (stale) incarnation is dropped
and counted as ``net.stale_incarnation_dropped``; traffic addressed to a
previous incarnation of *ourselves* (the peer has not yet learned we
recovered) is rejected — its sequence numbers belong to a dead
connection — and answered with an ACK that reveals our real incarnation
so the peer resets and renumbers.

Piggybacked heartbeat headers: when the stack wires ``hb_epoch_provider``
/ ``hb_sample_sink``, every outgoing DATA/BATCH/ACK datagram carries the
sender failure detector's current heartbeat epoch as a trailing field,
and received epochs are fed to the local detector — so the adaptive
timeout estimator keeps getting one arrival sample per heartbeat period
even when explicit heartbeats are suppressed on busy links (see
``repro.fd.heartbeat``).  Unwired channels keep the bare wire format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.net.wire import payload_size
from repro.sim.process import Component, Process

PORT = "rc"

#: Default layer attribution for well-known ports (used when the caller
#: does not pass ``layer=`` to :meth:`ReliableChannel.send`).  Unknown
#: ports fall back to their prefix before the first dot.
PORT_LAYERS = {
    "abc.pull": "abcast",
    "cons": "consensus",
    "gb.ack": "gbcast",
    "gb.gather": "gbcast",
    "gb.gather_ok": "gbcast",
    "gm.state": "membership",
    "gm.join_req": "membership",
    "rb": "rbcast",
    "rb.stable": "rbcast",
    "fd.hb": "fd",
}


def layer_of_port(port: str) -> str:
    """Best-effort layer attribution for a port name."""
    return PORT_LAYERS.get(port, port.split(".", 1)[0])


@dataclass(slots=True)
class _Pending:
    seq: int
    port: str
    payload: Any
    first_sent: float
    layer: str = "other"
    #: Causal "queue" span for this segment: opened at ``send()``, closed
    #: at first transmission; re-activated around retransmissions so they
    #: chain to the original send in the span tree.
    span: Any = None


class ReliableChannel(Component):
    """Per-process reliable FIFO point-to-point channel.

    **Send-side coalescing** (off by default): with ``coalesce_delay``
    set, DATA segments to the same peer are buffered for up to that many
    milliseconds (or until ``max_segment_batch`` segments accumulate)
    and ride one ``BATCH`` datagram; the receiver answers a whole batch
    — and every arrival within one coalescing window — with a single
    cumulative ACK.  This cuts the channel's datagram share of
    per-delivery cost sharply under bursty traffic, at the price of up
    to ``coalesce_delay`` ms of extra first-transmission latency.
    Reliability, FIFO order and the incarnation fencing are unaffected:
    segments keep their per-peer sequence numbers, and the receive-side
    reorder buffer is oblivious to how segments were packed on the wire.
    """

    def __init__(
        self,
        process: Process,
        retransmit_interval: float = 20.0,
        stuck_timeout: float = 500.0,
        coalesce_delay: float | None = None,
        max_segment_batch: int = 8,
    ) -> None:
        super().__init__(process, "rc")
        self.retransmit_interval = retransmit_interval
        self.stuck_timeout = stuck_timeout
        self.coalesce_delay = coalesce_delay
        self.max_segment_batch = max(1, max_segment_batch)
        self._next_seq: dict[str, int] = {}
        self._outbox: dict[str, dict[int, _Pending]] = {}
        #: Per-peer sequence floor left behind by :meth:`discard`: seqs
        #: below it may have been dropped unsent and will never be
        #: retransmitted, so a receiver stalled below the floor (the
        #: excluded peer rejoined on the same connection) is told to
        #: skip ahead with a GAP datagram instead of waiting forever.
        self._discard_floor: dict[str, int] = {}
        self._next_expected: dict[str, int] = {}
        self._reorder_buffer: dict[str, dict[int, tuple[str, Any]]] = {}
        #: Highest incarnation observed per peer; a jump resets the
        #: connection state for that peer (crash-recovery model).
        self._peer_incarnation: dict[str, int] = {}
        self._stuck_listeners: list[Callable[[str, float], None]] = []
        #: Segments awaiting a coalesced flush, per peer (coalescing only).
        self._sendbuf: dict[str, list[_Pending]] = {}
        self._flush_scheduled: set[str] = set()
        #: Peers owed an ACK by the pending delayed-ACK timer (coalescing only).
        self._ack_owed: set[str] = set()
        #: Traffic-aware FD wiring (set by the stack): the sender's
        #: current heartbeat epoch to stamp on outgoing datagrams, and
        #: the sink that receives ``(src, incarnation, epoch)`` for every
        #: epoch-stamped datagram that passes the incarnation fences.
        self.hb_epoch_provider: Callable[[], int] | None = None
        self.hb_sample_sink: Callable[[str, int, int], None] | None = None
        counters = self.world.metrics.counters
        self._counters = counters
        self._spans = self.world.trace.spans
        self._inc_sent = counters.handle("rc.sent")
        self._inc_delivered = counters.handle("rc.delivered")
        self._inc_retransmits = counters.handle("rc.retransmits")
        self._inc_batches = counters.handle("rc.batches")
        self._inc_coalesced = counters.handle("rc.segments_coalesced")
        self._port_handles: dict[str, Callable] = {}
        self.register_port(PORT, self._on_datagram)

    @property
    def incarnation(self) -> int:
        return self.process.incarnation

    def start(self) -> None:
        self.schedule(self.retransmit_interval, self._tick)

    def _stamp(self, datagram: tuple) -> tuple:
        """Append the current hb-epoch header when the FD is wired."""
        if self.hb_epoch_provider is None:
            return datagram
        return datagram + (self.hb_epoch_provider(),)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: str, port: str, payload: Any, layer: str | None = None) -> None:
        """Reliably send ``payload`` to ``port`` on ``dst`` (FIFO order).

        ``layer`` attributes the first transmission to the initiating
        protocol layer for the ``net.sent.<layer>`` counters; when
        omitted it is derived from the port name.  ACKs and
        retransmissions are channel overhead and always count as ``rc``.
        """
        layer = layer or layer_of_port(port)
        self._inc_sent()
        inc_port = self._port_handles.get(port)
        if inc_port is None:
            inc_port = self._port_handles[port] = self._counters.handle(
                f"rc.sent.port.{port}"
            )
        inc_port()
        if dst == self.pid:
            # Local delivery: immediate, reliable and ordered by the
            # scheduler; no acks needed.
            self.schedule(0.0, self.process.dispatch, port, self.pid, payload)
            return
        seq = self._next_seq.get(dst, 0)
        self._next_seq[dst] = seq + 1
        pending = _Pending(seq, port, payload, self.now, layer)
        self._outbox.setdefault(dst, {})[seq] = pending
        spans = self._spans
        if spans.enabled:
            pending.span = spans.begin(self.pid, layer, f"rc:{port}", "queue", self.now)
        if self.coalesce_delay is None:
            self._send_under(
                pending.span, dst,
                self._stamp(("DATA", self.incarnation, self._peer_incarnation.get(dst, 0), seq, port, payload)),
                layer,
            )
            if pending.span is not None:
                # No coalescing wait on the direct path: zero queue time.
                pending.span.end = self.now
            return
        buffered = self._sendbuf.setdefault(dst, [])
        buffered.append(pending)
        if len(buffered) >= self.max_segment_batch:
            self._flush(dst)
        elif dst not in self._flush_scheduled:
            self._flush_scheduled.add(dst)
            self.schedule(self.coalesce_delay, self._flush, dst)

    def _flush(self, dst: str) -> None:
        """Send everything buffered for ``dst`` as one BATCH datagram.

        The datagram is attributed to the first segment's layer — a
        packed datagram is one wire message, and mixed batches are rare
        enough that finer attribution is not worth a per-segment counter.
        """
        self._flush_scheduled.discard(dst)
        buffered = self._sendbuf.pop(dst, None)
        if not buffered:
            return
        # Close every segment's queue span (the coalescing wait ends
        # here); the wire datagram rides under the first segment's span.
        now = self.now
        for e in buffered:
            if e.span is not None:
                e.span.end = now
        if len(buffered) == 1:
            entry = buffered[0]
            self._send_under(
                entry.span, dst,
                self._stamp(("DATA", self.incarnation, self._peer_incarnation.get(dst, 0),
                             entry.seq, entry.port, entry.payload)),
                entry.layer,
            )
            return
        self._inc_batches()
        self._inc_coalesced(len(buffered) - 1)
        segments = tuple((e.seq, e.port, e.payload) for e in buffered)
        # Datagram *count* goes to the first segment's layer (one wire
        # message); *bytes* are split per segment — a consensus-headed
        # batch must not absorb the abcast payload bodies packed behind
        # it, or the ordering-vs-dissemination byte split is noise.
        split = [(e.layer, payload_size(e.payload)) for e in buffered]
        self._send_under(
            buffered[0].span, dst,
            self._stamp(("BATCH", self.incarnation, self._peer_incarnation.get(dst, 0), segments)),
            buffered[0].layer,
            byte_split=split,
        )

    def _send_under(
        self,
        span: Any,
        dst: str,
        datagram: tuple,
        layer: str,
        byte_split: list[tuple[str, int]] | None = None,
    ) -> None:
        """``u_send`` with ``span`` as the ambient causal parent (if any),
        so the datagram's transit span chains to the segment's queue span
        — including for retransmissions long after the original send."""
        if span is None:
            self.world.u_send(
                self.pid, dst, PORT, datagram, layer=layer, byte_split=byte_split
            )
            return
        spans = self._spans
        prev = spans._current
        spans._current = span
        try:
            self.world.u_send(
                self.pid, dst, PORT, datagram, layer=layer, byte_split=byte_split
            )
        finally:
            spans._current = prev

    def send_to_all(
        self, dsts: list[str], port: str, payload: Any, layer: str | None = None
    ) -> None:
        for dst in dsts:
            self.send(dst, port, payload, layer=layer)

    def discard(self, dst: str) -> None:
        """Drop buffered messages for ``dst`` (after membership exclusion).

        This punches a hole in the connection's sequence space: anything
        discarded while unacknowledged will never be retransmitted.  The
        floor of the hole is remembered so that if the excluded process
        later *rejoins* (same incarnation, same connection), a receiver
        still waiting below it can be advanced past the hole — see the
        GAP handling in :meth:`_on_ack` / :meth:`_on_datagram`.
        """
        dropped = self._outbox.pop(dst, None)
        self._sendbuf.pop(dst, None)
        self._flush_scheduled.discard(dst)
        self._discard_floor[dst] = self._next_seq.get(dst, 0)
        if dropped:
            self.trace("discard", dst=dst, count=len(dropped))

    def unacked(self, dst: str) -> int:
        return len(self._outbox.get(dst, {}))

    def oldest_unacked_age(self, dst: str) -> float:
        pending = self._outbox.get(dst)
        if not pending:
            return 0.0
        return self.now - min(p.first_sent for p in pending.values())

    def on_stuck(self, listener: Callable[[str, float], None]) -> None:
        """Register an output-triggered suspicion listener.

        The listener receives ``(dst, age_ms)`` on every retransmission
        tick while the oldest unacked message to ``dst`` exceeds
        ``stuck_timeout``.
        """
        self._stuck_listeners.append(listener)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _on_datagram(self, src: str, datagram: tuple) -> None:
        kind, incarnation, believes_us = datagram[0], datagram[1], datagram[2]
        if not self._note_peer_incarnation(src, incarnation):
            self.world.metrics.counters.inc("net.stale_incarnation_dropped")
            return
        # Piggybacked hb-epoch header (trailing field, present only when
        # the sender's channel is FD-wired).  Fed after the incarnation
        # fence: a stale incarnation's epoch must not vouch for the peer.
        base = 6 if kind == "DATA" else 4
        if len(datagram) > base and self.hb_sample_sink is not None:
            self.hb_sample_sink(src, incarnation, datagram[base])
        if believes_us != self.process.incarnation:
            # The peer is still talking to a previous incarnation's
            # connection: its sequence numbers are meaningless to us.
            # Reject the segment, but answer (our ACK carries our real
            # incarnation) so the peer learns of us and resets.
            self.world.metrics.counters.inc("rc.stale_connection_dropped")
            if kind != "ACK":
                self._send_ack(src)
            return
        if kind == "DATA":
            seq, port, payload = datagram[3], datagram[4], datagram[5]
            self._admit(src, seq, port, payload)
            self._request_ack(src)
        elif kind == "BATCH":
            segments = datagram[3]
            for seq, port, payload in segments:
                self._admit(src, seq, port, payload)
                if self.process.crashed:
                    return
            # One cumulative ACK covers the whole batch.
            self._request_ack(src)
        elif kind == "ACK":
            self._on_ack(src, datagram[3])
        elif kind == "GAP":
            self._skip_hole(src, datagram[3])
            self._request_ack(src)

    def _send_ack(self, src: str) -> None:
        self.world.u_send(
            self.pid, src, PORT,
            self._stamp((
                "ACK",
                self.incarnation,
                self._peer_incarnation.get(src, 0),
                self._next_expected.get(src, 0),
            )),
            layer="rc",
        )

    def _request_ack(self, src: str) -> None:
        """ACK ``src`` — immediately, or via the delayed cumulative-ACK
        timer when coalescing is on (arrivals within one window share
        one ACK; the ACK is cumulative, so delaying it is always safe)."""
        if self.coalesce_delay is None:
            self._send_ack(src)
            return
        if src in self._ack_owed:
            return
        self._ack_owed.add(src)
        self.schedule(self.coalesce_delay, self._flush_ack, src)

    def _flush_ack(self, src: str) -> None:
        if src in self._ack_owed:
            self._ack_owed.discard(src)
            self._send_ack(src)

    def _note_peer_incarnation(self, src: str, incarnation: int) -> bool:
        """Track ``src``'s incarnation; returns False for stale traffic.

        On a jump the peer has recovered from a crash: its old connection
        state (receive counters, reorder buffer) is void, and anything
        still unacknowledged towards it must be re-sent on the new
        connection — renumbered from zero, in the original FIFO order.
        """
        # An unknown peer is at incarnation 0 by definition (every process
        # starts there): send state built before first contact belongs to
        # the incarnation-0 connection and must be renumbered on a jump.
        known = self._peer_incarnation.get(src, 0)
        if incarnation < known:
            return False
        if incarnation > known:
            self.trace("peer_reincarnated", peer=src, incarnation=incarnation)
            self.world.metrics.counters.inc("rc.peer_reincarnations")
            self._next_expected.pop(src, None)
            self._reorder_buffer.pop(src, None)
            # The new connection is renumbered from zero; an exclusion
            # hole in the old numbering is meaningless on it.
            self._discard_floor.pop(src, None)
            # Coalescing buffers hold old-connection sequence numbers;
            # their segments are in the outbox and get renumbered below.
            self._sendbuf.pop(src, None)
            self._flush_scheduled.discard(src)
            pending = self._outbox.pop(src, None)
            self._next_seq.pop(src, None)
            if pending:
                entries = sorted(pending.values(), key=lambda p: p.seq)
                self._outbox[src] = {
                    seq: _Pending(seq, e.port, e.payload, self.now, e.layer, e.span)
                    for seq, e in enumerate(entries)
                }
                self._next_seq[src] = len(entries)
                self._peer_incarnation[src] = incarnation
                for seq, e in enumerate(entries):
                    self._send_under(
                        e.span, src,
                        self._stamp(("DATA", self.incarnation, incarnation, seq, e.port, e.payload)),
                        e.layer,
                    )
        self._peer_incarnation[src] = incarnation
        return True

    def _admit(self, src: str, seq: int, port: str, payload: Any) -> None:
        """Run one DATA segment through the reorder buffer (no ACK —
        the caller acknowledges once per datagram / coalescing window)."""
        expected = self._next_expected.get(src, 0)
        if seq >= expected:
            buffer = self._reorder_buffer.setdefault(src, {})
            buffer.setdefault(seq, (port, payload))
            while expected in buffer:
                deliver_port, deliver_payload = buffer.pop(expected)
                expected += 1
                self._next_expected[src] = expected
                self._inc_delivered()
                self.process.dispatch(deliver_port, src, deliver_payload)
                if self.process.crashed:
                    return

    def _skip_hole(self, src: str, floor: int) -> None:
        """Advance past a sender-declared discard hole (GAP datagram).

        Everything below ``floor`` was addressed to this process's
        membership session *before* its exclusion and was dropped by the
        sender; waiting for it would wedge the connection forever.  Any
        buffered segments below the floor belong to that torn-down era
        and are dropped with it; delivery resumes contiguously from the
        floor.
        """
        expected = self._next_expected.get(src, 0)
        if floor <= expected:
            return
        buffer = self._reorder_buffer.setdefault(src, {})
        stale = [seq for seq in buffer if seq < floor]
        for seq in stale:
            del buffer[seq]
        self._next_expected[src] = floor
        self.world.metrics.counters.inc("rc.gap_skips")
        self.trace("gap_skip", src=src, floor=floor, dropped=len(stale))
        while self._next_expected[src] in buffer:
            expected = self._next_expected[src]
            deliver_port, deliver_payload = buffer.pop(expected)
            self._next_expected[src] = expected + 1
            self._inc_delivered()
            self.process.dispatch(deliver_port, src, deliver_payload)
            if self.process.crashed:
                return

    def _on_ack(self, src: str, ack_up_to: int) -> None:
        pending = self._outbox.get(src)
        if pending:
            for seq in [s for s in pending if s < ack_up_to]:
                del pending[seq]
        floor = self._discard_floor.get(src, 0)
        if ack_up_to < floor:
            # The receiver is waiting for a segment below the discard
            # floor — we dropped it on exclusion and will never resend
            # it.  The peer has rejoined (it is acking again), so tell
            # it to skip the hole; re-sent on every stalled ACK, which
            # makes the notice loss-tolerant.
            self.world.metrics.counters.inc("rc.gap_notices")
            self.world.u_send(
                self.pid, src, PORT,
                self._stamp(("GAP", self.incarnation, self._peer_incarnation.get(src, 0), floor)),
                layer="rc",
            )

    # ------------------------------------------------------------------
    # Retransmission + output-triggered suspicion
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        # Copy: stuck-listeners may send new messages (mutating the outbox).
        for dst, pending in list(self._outbox.items()):
            if not pending:
                continue
            oldest = min(p.first_sent for p in pending.values())
            believed = self._peer_incarnation.get(dst, 0)
            entries = sorted(pending.values(), key=lambda p: p.seq)
            if self.coalesce_delay is None:
                for entry in entries:
                    self._inc_retransmits()
                    self._send_under(
                        entry.span, dst,
                        self._stamp(("DATA", self.incarnation, believed, entry.seq, entry.port, entry.payload)),
                        "rc",
                    )
            else:
                # Retransmissions batch too — they are pure channel
                # overhead, so fewer datagrams is a direct win.
                for i in range(0, len(entries), self.max_segment_batch):
                    chunk = entries[i:i + self.max_segment_batch]
                    self._inc_retransmits(len(chunk))
                    if len(chunk) == 1:
                        entry = chunk[0]
                        self._send_under(
                            entry.span, dst,
                            self._stamp(("DATA", self.incarnation, believed,
                                         entry.seq, entry.port, entry.payload)),
                            "rc",
                        )
                    else:
                        segments = tuple((e.seq, e.port, e.payload) for e in chunk)
                        self._send_under(
                            chunk[0].span, dst,
                            self._stamp(("BATCH", self.incarnation, believed, segments)),
                            "rc",
                        )
            age = self.now - oldest
            if age > self.stuck_timeout:
                for listener in self._stuck_listeners:
                    listener(dst, age)
        self.schedule(self.retransmit_interval, self._tick)


def channel_of(process: Process) -> ReliableChannel:
    """Fetch the reliable channel component of a process."""
    channel = process.component("rc")
    assert isinstance(channel, ReliableChannel)
    return channel

"""Reliable channel component (Section 3.3.1 of the paper).

Guarantees: if a correct process ``p`` sends ``m`` to a correct process
``q``, then ``q`` eventually receives ``m`` — implemented with sequence
numbers, cumulative acknowledgements and periodic retransmission over the
unreliable transport (the paper implements it over TCP [15]).  Delivery
is FIFO per sender, like TCP.

The channel also implements *output-triggered suspicion* [12]
(Section 3.3.2): if a message stays unacknowledged longer than
``stuck_timeout``, registered listeners (the monitoring component) are
notified.  ``discard(dst)`` drops the send buffer for an excluded
process, which is the paper's reason for coupling the channel to the
monitoring component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.process import Component, Process

PORT = "rc"


@dataclass
class _Pending:
    seq: int
    port: str
    payload: Any
    first_sent: float


class ReliableChannel(Component):
    """Per-process reliable FIFO point-to-point channel."""

    def __init__(
        self,
        process: Process,
        retransmit_interval: float = 20.0,
        stuck_timeout: float = 500.0,
    ) -> None:
        super().__init__(process, "rc")
        self.retransmit_interval = retransmit_interval
        self.stuck_timeout = stuck_timeout
        self._next_seq: dict[str, int] = {}
        self._outbox: dict[str, dict[int, _Pending]] = {}
        self._next_expected: dict[str, int] = {}
        self._reorder_buffer: dict[str, dict[int, tuple[str, Any]]] = {}
        self._stuck_listeners: list[Callable[[str, float], None]] = []
        self.register_port(PORT, self._on_datagram)

    def start(self) -> None:
        self.schedule(self.retransmit_interval, self._tick)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: str, port: str, payload: Any) -> None:
        """Reliably send ``payload`` to ``port`` on ``dst`` (FIFO order)."""
        self.world.metrics.counters.inc("rc.sent")
        self.world.metrics.counters.inc(f"rc.sent.port.{port}")
        if dst == self.pid:
            # Local delivery: immediate, reliable and ordered by the
            # scheduler; no acks needed.
            self.schedule(0.0, self.process.dispatch, port, self.pid, payload)
            return
        seq = self._next_seq.get(dst, 0)
        self._next_seq[dst] = seq + 1
        self._outbox.setdefault(dst, {})[seq] = _Pending(seq, port, payload, self.now)
        self.world.u_send(self.pid, dst, PORT, ("DATA", seq, port, payload))

    def send_to_all(self, dsts: list[str], port: str, payload: Any) -> None:
        for dst in dsts:
            self.send(dst, port, payload)

    def discard(self, dst: str) -> None:
        """Drop buffered messages for ``dst`` (after membership exclusion)."""
        dropped = self._outbox.pop(dst, None)
        if dropped:
            self.trace("discard", dst=dst, count=len(dropped))

    def unacked(self, dst: str) -> int:
        return len(self._outbox.get(dst, {}))

    def oldest_unacked_age(self, dst: str) -> float:
        pending = self._outbox.get(dst)
        if not pending:
            return 0.0
        return self.now - min(p.first_sent for p in pending.values())

    def on_stuck(self, listener: Callable[[str, float], None]) -> None:
        """Register an output-triggered suspicion listener.

        The listener receives ``(dst, age_ms)`` on every retransmission
        tick while the oldest unacked message to ``dst`` exceeds
        ``stuck_timeout``.
        """
        self._stuck_listeners.append(listener)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _on_datagram(self, src: str, datagram: tuple) -> None:
        kind = datagram[0]
        if kind == "DATA":
            _, seq, port, payload = datagram
            self._on_data(src, seq, port, payload)
        elif kind == "ACK":
            _, ack_up_to = datagram
            self._on_ack(src, ack_up_to)

    def _on_data(self, src: str, seq: int, port: str, payload: Any) -> None:
        expected = self._next_expected.get(src, 0)
        if seq >= expected:
            buffer = self._reorder_buffer.setdefault(src, {})
            buffer.setdefault(seq, (port, payload))
            while expected in buffer:
                deliver_port, deliver_payload = buffer.pop(expected)
                expected += 1
                self._next_expected[src] = expected
                self.world.metrics.counters.inc("rc.delivered")
                self.process.dispatch(deliver_port, src, deliver_payload)
                if self.process.crashed:
                    return
        # Always (re-)acknowledge: the previous ACK may have been lost.
        self.world.u_send(self.pid, src, PORT, ("ACK", self._next_expected.get(src, 0)))

    def _on_ack(self, src: str, ack_up_to: int) -> None:
        pending = self._outbox.get(src)
        if not pending:
            return
        for seq in [s for s in pending if s < ack_up_to]:
            del pending[seq]

    # ------------------------------------------------------------------
    # Retransmission + output-triggered suspicion
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        # Copy: stuck-listeners may send new messages (mutating the outbox).
        for dst, pending in list(self._outbox.items()):
            if not pending:
                continue
            oldest = min(p.first_sent for p in pending.values())
            for entry in sorted(pending.values(), key=lambda p: p.seq):
                self.world.metrics.counters.inc("rc.retransmits")
                self.world.u_send(
                    self.pid, dst, PORT, ("DATA", entry.seq, entry.port, entry.payload)
                )
            age = self.now - oldest
            if age > self.stuck_timeout:
                for listener in self._stuck_listeners:
                    listener(dst, age)
        self.schedule(self.retransmit_interval, self._tick)


def channel_of(process: Process) -> ReliableChannel:
    """Fetch the reliable channel component of a process."""
    channel = process.component("rc")
    assert isinstance(channel, ReliableChannel)
    return channel

"""Dissemination overlay: deterministic ring / k-ary tree payload routing.

Flood dissemination (the default everywhere) makes the *origin* unicast
every payload to all n−1 members, so the origin's NIC is the throughput
ceiling — the classic bottleneck Ring Paxos removes by routing payloads
along a ring so that every node sends each body at most once.  This
module computes the next hops of that routing, purely as a function of
the current membership, the packet's origin, and the failure detector's
current suspect set:

* ``ring`` — members sorted and rotated so the origin is the head; each
  member forwards to its successor, and the last member (the origin's
  ring predecessor) forwards to nobody.  O(1) payload sends per node per
  broadcast instead of O(n) at the origin.
* ``tree`` — the same rotated order read as a k-ary heap rooted at the
  origin: the member at index ``i`` forwards to indices ``k*i+1 ..
  k*i+k``.  Latency O(log_k n) hops, fan-out bounded by ``k``.

**Failure repair** (the part that keeps rbcast's agreement argument
intact, see ``repro.broadcast.rbcast``): a suspected member is routed
*around* — its routing duties are adopted by the node that would have
sent to it (ring: skip to the next unsuspected successor; tree: adopt
the suspect's children) — while the packet is still sent to the suspect
directly as a best-effort hop, so a *falsely* suspected member keeps
receiving payloads and only the chain no longer depends on it.  Each
skip is reported as a re-route so callers can count ``rb.reroutes``.

Everything here is deterministic: hops depend only on the sorted member
list, the origin pid, and the (sorted) suspect set — never on arrival
order or randomness — so same-seed runs stay byte-identical and the
routing recomputes itself on every view install or reincarnation simply
by being evaluated against the current membership at send time.
"""

from __future__ import annotations

from typing import Iterable

POLICIES = ("flood", "ring", "tree")


class DisseminationOverlay:
    """Next-hop computation for ring / tree payload dissemination."""

    def __init__(self, policy: str, fanout: int = 2) -> None:
        if policy not in ("ring", "tree"):
            raise ValueError(f"unknown dissemination policy {policy!r}")
        if policy == "tree" and fanout < 1:
            raise ValueError("tree fanout must be >= 1")
        self.policy = policy
        self.fanout = fanout
        # Rotated ring order per (members, origin): membership changes
        # rarely relative to packet rate, so the sort is paid once per
        # (view, origin) pair, not once per packet.
        self._order_cache: dict[tuple[tuple[str, ...], str], list[str]] = {}

    # ------------------------------------------------------------------
    # Deterministic structure
    # ------------------------------------------------------------------
    def order(self, members: Iterable[str], origin: str) -> list[str]:
        """Members sorted and rotated so ``origin`` is at index 0."""
        key = (tuple(members), origin)
        cached = self._order_cache.get(key)
        if cached is not None:
            return cached
        ring = sorted(set(key[0]))
        if origin in ring:
            at = ring.index(origin)
            ring = ring[at:] + ring[:at]
        if len(self._order_cache) > 64:
            # Views change rarely; a tiny cache is plenty, and clearing
            # beats unbounded growth across many reconfigurations.
            self._order_cache.clear()
        self._order_cache[key] = ring
        return ring

    def ring_successor(self, members: Iterable[str], origin: str, pid: str) -> str | None:
        """``pid``'s failure-free ring successor (None = end of chain)."""
        hops, _ = self._ring_hops(self.order(members, origin), pid, set())
        return hops[0] if hops else None

    def tree_children(self, members: Iterable[str], origin: str, pid: str) -> list[str]:
        """``pid``'s failure-free tree children."""
        hops, _ = self._tree_hops(self.order(members, origin), pid, set())
        return hops

    # ------------------------------------------------------------------
    # Routing with failure repair
    # ------------------------------------------------------------------
    def next_hops(
        self,
        members: Iterable[str],
        origin: str,
        pid: str,
        suspects: set[str],
    ) -> tuple[list[str], int]:
        """Where ``pid`` forwards a packet of ``origin``, and how many
        suspects were routed around.

        Falls back to flooding the whole group when ``pid`` or the
        origin is outside the membership (a stale view mid-change): the
        flood is always safe, and dedup absorbs the redundancy.
        """
        ring = self.order(members, origin)
        if pid not in ring or origin not in ring:
            return [q for q in ring if q != pid], 0
        if self.policy == "ring":
            return self._ring_hops(ring, pid, suspects)
        return self._tree_hops(ring, pid, suspects)

    def _ring_hops(
        self, ring: list[str], pid: str, suspects: set[str]
    ) -> tuple[list[str], int]:
        n = len(ring)
        at = ring.index(pid)
        hops: list[str] = []
        reroutes = 0
        for step in range(1, n):
            succ = ring[(at + step) % n]
            if succ == ring[0]:
                return hops, reroutes  # wrapped back to the origin: chain done
            if succ in suspects:
                # Route around, but still hand the suspect its copy: if
                # the suspicion is false it keeps receiving payloads.
                hops.append(succ)
                reroutes += 1
                continue
            hops.append(succ)
            return hops, reroutes
        return hops, reroutes

    def _tree_hops(
        self, ring: list[str], pid: str, suspects: set[str]
    ) -> tuple[list[str], int]:
        n = len(ring)
        at = ring.index(pid)
        hops: list[str] = []
        reroutes = 0
        k = self.fanout
        # A suspected child still gets its best-effort copy, but its own
        # children are adopted (recursively) so the subtree below it
        # does not depend on a possibly-crashed forwarder.
        pending = [k * at + c for c in range(1, k + 1)]
        while pending:
            child = pending.pop(0)
            if child >= n:
                continue
            q = ring[child]
            hops.append(q)
            if q in suspects:
                reroutes += 1
                pending.extend(k * child + c for c in range(1, k + 1))
        return hops, reroutes

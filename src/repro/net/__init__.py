"""Simulated network: messages, unreliable transport, reliable channel."""

from repro.net.message import DEFAULT_CLASS, AppMessage, Envelope, MsgId, MsgIdFactory
from repro.net.reliable import ReliableChannel, channel_of
from repro.net.topology import LAN, LOSSY, LinkModel, PartitionState
from repro.net.transport import UnreliableTransport
from repro.net.wire import HEADER_BYTES, Blob, payload_size, wire_size

__all__ = [
    "AppMessage",
    "Blob",
    "DEFAULT_CLASS",
    "Envelope",
    "HEADER_BYTES",
    "LAN",
    "LOSSY",
    "LinkModel",
    "MsgId",
    "MsgIdFactory",
    "PartitionState",
    "ReliableChannel",
    "UnreliableTransport",
    "channel_of",
    "payload_size",
    "wire_size",
]

"""Simulated network: messages, unreliable transport, reliable channel."""

from repro.net.message import DEFAULT_CLASS, AppMessage, Envelope, MsgId, MsgIdFactory
from repro.net.reliable import ReliableChannel, channel_of
from repro.net.topology import LAN, LOSSY, LinkModel, PartitionState
from repro.net.transport import UnreliableTransport

__all__ = [
    "AppMessage",
    "DEFAULT_CLASS",
    "Envelope",
    "LAN",
    "LOSSY",
    "LinkModel",
    "MsgId",
    "MsgIdFactory",
    "PartitionState",
    "ReliableChannel",
    "UnreliableTransport",
    "channel_of",
]

"""Message identities and application-level messages.

A :class:`MsgId` is globally unique and totally ordered (sender id, then
per-sender sequence number); protocols use this order whenever they need
a deterministic tie-break that is identical at every process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

#: Conflict class used when the caller does not specify one.  The
#: built-in relations treat it as conflicting with everything, which is
#: the safe default (equivalent to atomic broadcast).
DEFAULT_CLASS = "default"


@dataclass(frozen=True, order=True)
class MsgId:
    """Globally unique, totally ordered message identifier.

    ``incarnation`` distinguishes the message streams of successive
    incarnations of the same process under the crash-recovery model: a
    recovered process restarts its sequence numbers from zero (volatile
    state is lost), so ids stay globally unique only because they also
    carry the incarnation number.
    """

    sender: str
    seq: int
    incarnation: int = 0

    def __str__(self) -> str:
        if self.incarnation:
            return f"{self.sender}~{self.incarnation}#{self.seq}"
        return f"{self.sender}#{self.seq}"


@dataclass(frozen=True)
class AppMessage:
    """An application message carried by the broadcast primitives.

    ``msg_class`` is the conflict class used by generic broadcast
    (Section 3.2.1 of the paper: the ordering of messages is defined by a
    conflict relation on message classes).
    """

    id: MsgId
    sender: str
    payload: Any
    msg_class: str = DEFAULT_CLASS

    def __str__(self) -> str:
        return f"{self.id}[{self.msg_class}]"


class MsgIdFactory:
    """Per-(process, incarnation) factory for unique message ids."""

    def __init__(self, pid: str, incarnation: int = 0) -> None:
        self.pid = pid
        self.incarnation = incarnation
        self._counter = itertools.count()

    def next(self) -> MsgId:
        return MsgId(self.pid, next(self._counter), self.incarnation)

    def message(self, payload: Any, msg_class: str = DEFAULT_CLASS) -> AppMessage:
        return AppMessage(self.next(), self.pid, payload, msg_class)


@dataclass(frozen=True)
class Envelope:
    """What the unreliable transport actually carries."""

    src: str
    dst: str
    port: str
    payload: Any = field(compare=False)

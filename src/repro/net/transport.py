"""Unreliable transport: the bottom of every stack (Fig. 9, ``u-send`` /
``u-receive``).

Delivers envelopes point-to-point with per-link stochastic delay, loss
and duplication, and respects the current partition.  Messages to a
crashed process are dropped at delivery time (crash-stop model).

Crash-recovery fencing: every datagram is stamped at send time with the
sender's and the addressee's current incarnation numbers.  At delivery
time the stamp must still match on both ends — a packet sent *by* an
incarnation that has since been replaced, or *to* an incarnation that
has since died, is dropped and counted as ``net.stale_incarnation_dropped``.
This models what connection-oriented transports give real systems for
free: the old incarnation's connections die with it, so its traffic can
never be confused with the new incarnation's.

Traffic-aware liveness (Section 3.3.2 taken to its conclusion): any
datagram received from a peer is evidence that the peer is alive, not
just its explicit heartbeats.  The transport therefore exposes two hooks
for the failure-detection component:

* a **liveness tap** — ``register_liveness_sink(process, sink)`` installs
  a per-process callback invoked at delivery time, *after* the
  incarnation fence, with ``(src, src_incarnation, port)``.  The fence
  matters: a datagram sent by a since-replaced incarnation is dropped
  before the tap, so stale pre-crash traffic can never vouch for a
  recovered process.  Sinks are themselves incarnation-fenced — a sink
  registered by a dead incarnation's component stops firing the moment
  the process recovers.
* **last-sent tracking** — ``last_sent(src, dst)`` reports when ``src``
  last handed the transport any datagram for ``dst``.  The failure
  detector uses it to *suppress* explicit heartbeats on links our own
  traffic already keeps warm.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.net.topology import LAN, LinkModel
from repro.net.wire import wire_size
from repro.sim.randomness import fork_rng

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.sim.world import World


class UnreliableTransport:
    """Point-to-point datagram service over the simulated network."""

    def __init__(self, world: "World", default_link: LinkModel = LAN) -> None:
        self.world = world
        self.default_link = default_link
        self._links: dict[tuple[str, str], LinkModel] = {}
        self._rng = fork_rng(world.seed, "transport")
        self._spans = world.trace.spans
        # Bound counter handles, resolved once: the three increments on
        # the send path used to pay an f-string format per datagram.
        counters = world.metrics.counters
        self._counters = counters
        self._inc_sent = counters.handle("net.sent")
        self._inc_bytes = counters.handle("net.bytes")
        self._inc_delivered = counters.handle("net.delivered")
        self._inc_dropped_partition = counters.handle("net.dropped.partition")
        self._inc_dropped_loss = counters.handle("net.dropped.loss")
        self._inc_dropped_crashed = counters.handle("net.dropped.crashed")
        self._inc_duplicated = counters.handle("net.duplicated")
        self._inc_stale = counters.handle("net.stale_incarnation_dropped")
        self._layer_handles: dict[str, Any] = {}
        self._layer_byte_handles: dict[str, Any] = {}
        #: Per-sender wire bytes (``net.bytes.sent.<pid>``): the
        #: measurement half of bandwidth-*balanced* dissemination — the
        #: aggregate ``net.bytes`` cannot show whether the load sits on
        #: one NIC (flood origin) or is spread around a ring/tree.
        self._pid_byte_handles: dict[str, Any] = {}
        self._port_handles: dict[str, Any] = {}
        #: pid -> (incarnation at registration, sink).  One sink per
        #: process; re-registration (a recovered incarnation's fresh FD)
        #: overwrites, and the stored incarnation fences out callbacks
        #: into components of a dead incarnation.
        self._liveness_sinks: dict[str, tuple[int, Callable[[str, int, str], None]]] = {}
        #: src pid -> {dst pid -> time of last datagram handed to us}.
        self._last_sent: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_link(self, src: str, dst: str, model: LinkModel) -> None:
        """Override the link model for one directed pair."""
        self._links[(src, dst)] = model

    def link(self, src: str, dst: str) -> LinkModel:
        return self._links.get((src, dst), self.default_link)

    # ------------------------------------------------------------------
    # Traffic-aware liveness hooks
    # ------------------------------------------------------------------
    def register_liveness_sink(
        self, process: Any, sink: Callable[[str, int, str], None]
    ) -> None:
        """Install ``sink(src, src_incarnation, port)`` for ``process``.

        The sink fires once per datagram delivered to the process, after
        the crash/incarnation/partition checks and before dispatch.  One
        sink per pid: registering again (a recovered incarnation's new
        failure detector) replaces the old one.
        """
        self._liveness_sinks[process.pid] = (process.incarnation, sink)

    def last_sent(self, src: str, dst: str) -> float | None:
        """When ``src`` last sent ``dst`` any datagram (None = never).

        Send-time, not delivery-time: a lost datagram still counts — the
        sender cannot know, exactly as with piggybacked liveness over a
        real network.  The suppression window bounds the resulting
        evidence gap to one heartbeat period.
        """
        per_dst = self._last_sent.get(src)
        return None if per_dst is None else per_dst.get(dst)

    # ------------------------------------------------------------------
    # Datagram service
    # ------------------------------------------------------------------
    def _byte_handle(self, layer: str) -> Any:
        handle = self._layer_byte_handles.get(layer)
        if handle is None:
            handle = self._layer_byte_handles[layer] = self._counters.handle(
                f"net.bytes.{layer}"
            )
        return handle

    def u_send(
        self,
        src: str,
        dst: str,
        port: str,
        payload: Any,
        layer: str = "other",
        byte_split: list[tuple[str, int]] | None = None,
    ) -> None:
        """Best-effort send; may drop, delay or duplicate.

        ``layer`` attributes the datagram to the protocol layer that
        caused it (``fd``, ``rc``, ``rbcast``, ``consensus``, ``abcast``,
        ``gbcast``, ``membership``, ...) as ``net.sent.<layer>`` — so
        per-delivery-cost claims can separate heartbeat background noise
        from protocol traffic.  Layers are attributed at the *initiating*
        layer: a reliable-channel DATA segment carrying a consensus
        message counts as ``consensus``, while the channel's own ACKs and
        retransmissions count as ``rc``.

        Alongside the datagram count, the structural wire-byte estimate
        (``repro.net.wire.wire_size``) is charged to ``net.bytes`` and
        ``net.bytes.<layer>`` — the measurement half of the
        dissemination-vs-ordering cost split: msgs/delivery alone cannot
        show that ordering traffic stopped carrying payload bodies.
        ``byte_split`` refines the byte attribution for multiplexed
        datagrams (a coalesced BATCH carrying segments of several
        layers): each ``(layer, bytes)`` entry is charged to its own
        layer and only the remainder (framing/header overhead) to
        ``layer`` — otherwise a consensus-headed batch would absorb the
        payload bodies coalesced behind it and the ordering-vs-
        dissemination split would be noise.
        """
        self._inc_sent()
        size = wire_size(payload)
        self._inc_bytes(size)
        inc_pid = self._pid_byte_handles.get(src)
        if inc_pid is None:
            inc_pid = self._pid_byte_handles[src] = self._counters.handle(
                f"net.bytes.sent.{src}"
            )
        inc_pid(size)
        inc_layer = self._layer_handles.get(layer)
        if inc_layer is None:
            inc_layer = self._layer_handles[layer] = self._counters.handle(
                f"net.sent.{layer}"
            )
        inc_layer()
        if byte_split is None:
            self._byte_handle(layer)(size)
        else:
            accounted = 0
            for seg_layer, seg_bytes in byte_split:
                self._byte_handle(seg_layer)(seg_bytes)
                accounted += seg_bytes
            self._byte_handle(layer)(size - accounted)
        inc_port = self._port_handles.get(port)
        if inc_port is None:
            inc_port = self._port_handles[port] = self._counters.handle(
                f"net.sent.port.{port}"
            )
        inc_port()
        now = self.world.scheduler.now
        per_dst = self._last_sent.get(src)
        if per_dst is None:
            per_dst = self._last_sent[src] = {}
        per_dst[dst] = now
        # Partitions are checked once, at delivery time (the authoritative
        # check: the simulated wire is cut for in-flight traffic too); the
        # old send-time pre-check was a duplicate on the hot path.
        model = self.link(src, dst)
        if src != dst and model.drops(self._rng):
            self._inc_dropped_loss()
            return
        copies = 2 if (src != dst and model.duplicates(self._rng)) else 1
        src_inc = self._incarnation(src)
        dst_inc = self._incarnation(dst)
        post = self.world.scheduler.post
        spans = self._spans
        transmit = 0.0 if src == dst else model.transmit_ms(size)
        for _ in range(copies):
            delay = 0.0 if src == dst else model.sample_delay(self._rng) + transmit
            # One transit span per datagram copy, child of whatever span
            # context caused this send — the causal edge of the hop.
            # Spans carry the payload's *size*, never its body: trace
            # artifacts must stay small under large-payload workloads.
            span = (
                spans.begin(src, layer, f"net:{port}", "transit", now)
                if spans.enabled
                else None
            )
            if span is not None:
                span.note(bytes=size)
            post(delay, self._deliver, src, dst, port, payload, src_inc, dst_inc, span)
        if copies == 2:
            self._inc_duplicated()

    def _incarnation(self, pid: str) -> int:
        process = self.world.processes.get(pid)
        return 0 if process is None else process.incarnation

    def _deliver(
        self,
        src: str,
        dst: str,
        port: str,
        payload: Any,
        src_inc: int = 0,
        dst_inc: int = 0,
        span: Any = None,
    ) -> None:
        now = self.world.scheduler.now
        if span is not None:
            span.end = now
        process = self.world.processes.get(dst)
        if process is None or process.crashed:
            self._inc_dropped_crashed()
            if span is not None:
                span.note(dropped="crashed")
            return
        # Incarnation fence (crash-recovery model): the packet must have
        # been sent by the sender's *current* incarnation and addressed
        # to the receiver's *current* incarnation.
        if self._incarnation(src) != src_inc or process.incarnation != dst_inc:
            self._inc_stale()
            if span is not None:
                span.note(dropped="stale_incarnation")
            return
        # Partitions stop messages both at send time and in flight: the
        # simulated "wire" is cut, which matches how tests expect an
        # abrupt split to behave.
        if src != dst and not self.world.partitions.connected(src, dst):
            self._inc_dropped_partition()
            if span is not None:
                span.note(dropped="partition")
            return
        self._inc_delivered()
        # Liveness tap: every surviving datagram is evidence that its
        # sender's *current* incarnation is alive (the fences above
        # already dropped anything from a replaced incarnation).
        entry = self._liveness_sinks.get(dst)
        if entry is not None and entry[0] == process.incarnation:
            entry[1](src, src_inc, port)
        if span is None:
            process.dispatch(port, src, payload)
            return
        # Activate the transit span around dispatch: everything the
        # receiving stack does in reaction — sends, timers — chains to
        # this datagram in the causal tree.
        spans = self._spans
        prev = spans._current
        spans._current = span
        try:
            process.dispatch(port, src, payload)
        finally:
            spans._current = prev

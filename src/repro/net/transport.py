"""Unreliable transport: the bottom of every stack (Fig. 9, ``u-send`` /
``u-receive``).

Delivers envelopes point-to-point with per-link stochastic delay, loss
and duplication, and respects the current partition.  Messages to a
crashed process are dropped at delivery time (crash-stop model).

Crash-recovery fencing: every datagram is stamped at send time with the
sender's and the addressee's current incarnation numbers.  At delivery
time the stamp must still match on both ends — a packet sent *by* an
incarnation that has since been replaced, or *to* an incarnation that
has since died, is dropped and counted as ``net.stale_incarnation_dropped``.
This models what connection-oriented transports give real systems for
free: the old incarnation's connections die with it, so its traffic can
never be confused with the new incarnation's.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.net.topology import LAN, LinkModel
from repro.sim.randomness import fork_rng

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.sim.world import World


class UnreliableTransport:
    """Point-to-point datagram service over the simulated network."""

    def __init__(self, world: "World", default_link: LinkModel = LAN) -> None:
        self.world = world
        self.default_link = default_link
        self._links: dict[tuple[str, str], LinkModel] = {}
        self._rng = fork_rng(world.seed, "transport")

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_link(self, src: str, dst: str, model: LinkModel) -> None:
        """Override the link model for one directed pair."""
        self._links[(src, dst)] = model

    def link(self, src: str, dst: str) -> LinkModel:
        return self._links.get((src, dst), self.default_link)

    # ------------------------------------------------------------------
    # Datagram service
    # ------------------------------------------------------------------
    def u_send(
        self, src: str, dst: str, port: str, payload: Any, layer: str = "other"
    ) -> None:
        """Best-effort send; may drop, delay or duplicate.

        ``layer`` attributes the datagram to the protocol layer that
        caused it (``fd``, ``rc``, ``rbcast``, ``consensus``, ``abcast``,
        ``gbcast``, ``membership``, ...) as ``net.sent.<layer>`` — so
        per-delivery-cost claims can separate heartbeat background noise
        from protocol traffic.  Layers are attributed at the *initiating*
        layer: a reliable-channel DATA segment carrying a consensus
        message counts as ``consensus``, while the channel's own ACKs and
        retransmissions count as ``rc``.
        """
        counters = self.world.metrics.counters
        counters.inc("net.sent")
        counters.inc(f"net.sent.{layer}")
        counters.inc(f"net.sent.port.{port}")
        if src != dst and not self.world.partitions.connected(src, dst):
            counters.inc("net.dropped.partition")
            return
        model = self.link(src, dst)
        if src != dst and model.drops(self._rng):
            counters.inc("net.dropped.loss")
            return
        copies = 2 if (src != dst and model.duplicates(self._rng)) else 1
        src_inc = self._incarnation(src)
        dst_inc = self._incarnation(dst)
        for _ in range(copies):
            delay = 0.0 if src == dst else model.sample_delay(self._rng)
            self.world.scheduler.schedule(
                delay, self._deliver, src, dst, port, payload, src_inc, dst_inc
            )
        if copies == 2:
            counters.inc("net.duplicated")

    def _incarnation(self, pid: str) -> int:
        process = self.world.processes.get(pid)
        return 0 if process is None else process.incarnation

    def _deliver(
        self,
        src: str,
        dst: str,
        port: str,
        payload: Any,
        src_inc: int = 0,
        dst_inc: int = 0,
    ) -> None:
        process = self.world.processes.get(dst)
        if process is None or process.crashed:
            self.world.metrics.counters.inc("net.dropped.crashed")
            return
        # Incarnation fence (crash-recovery model): the packet must have
        # been sent by the sender's *current* incarnation and addressed
        # to the receiver's *current* incarnation.
        if self._incarnation(src) != src_inc or process.incarnation != dst_inc:
            self.world.metrics.counters.inc("net.stale_incarnation_dropped")
            return
        # Partitions also stop messages already in flight: the simulated
        # "wire" is cut, which matches how tests expect an abrupt split
        # to behave.
        if src != dst and not self.world.partitions.connected(src, dst):
            self.world.metrics.counters.inc("net.dropped.partition")
            return
        self.world.metrics.counters.inc("net.delivered")
        process.dispatch(port, src, payload)

"""The new architecture composed on the event-routing kernel.

The paper's conclusion: "We have started the implementation of this new
architecture, using two different protocol composition frameworks: Appia
and Cactus.  The two implementations share the same protocol code at
each module, and differ only in the way interactions (events) are routed
across modules in each of the frameworks."

This module reproduces that duality.  :class:`ComposedNewArchitecture`
builds the *identical* protocol components as
:class:`repro.core.new_stack.NewArchitectureStack` (same classes, same
code), but the vertical interactions between the application and the
group-communication service — broadcast requests going down, deliveries
and view notifications going up — are routed as events through the
:mod:`repro.stack` composition kernel instead of direct method calls.

``tests/core/test_composed.py`` runs both compositions on identical
workloads and asserts byte-identical delivery sequences: same protocol
code, different routing, same behaviour.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.new_stack import NewArchitectureStack, StackConfig
from repro.gbcast.conflict import RBCAST_ABCAST, ConflictRelation
from repro.membership.view import View
from repro.net.message import AppMessage
from repro.sim.world import World
from repro.stack.events import Event
from repro.stack.kernel import StackKernel
from repro.stack.layer import Layer

# Event types of the vertical interface (Fig. 9 arrows).
GBCAST_REQ = "gc.gbcast"        # down: application broadcast request
JOIN_REQ = "gc.join"            # down: membership join request
REMOVE_REQ = "gc.remove"        # down: membership remove request
GDELIVER = "gc.gdeliver"        # up: generic broadcast delivery
NEW_VIEW = "gc.new_view"        # up: membership view notification


class ServiceLayer(Layer):
    """Bottom layer: adapts the Fig. 9 component suite to events.

    Downward events invoke the components; component up-calls re-enter
    the stack as upward events.
    """

    name = "gc_service"

    def __init__(self, stack: NewArchitectureStack) -> None:
        super().__init__()
        self.gc = stack
        stack.gbcast.on_gdeliver(self._on_gdeliver)
        stack.membership.on_new_view(self._on_new_view)

    def on_down(self, event: Event) -> None:
        if event.type == GBCAST_REQ:
            self.gc.gbcast.gbcast_payload(event["payload"], event["msg_class"])
        elif event.type == JOIN_REQ:
            self.gc.membership.join(event["pid"])
        elif event.type == REMOVE_REQ:
            self.gc.membership.remove(event["pid"])
        # Nothing travels below this layer: the components own the network.

    def _on_gdeliver(self, message: AppMessage) -> None:
        if message.msg_class.startswith("_"):
            return
        self.emit_up(GDELIVER, message=message)

    def _on_new_view(self, view: View) -> None:
        self.emit_up(NEW_VIEW, view=view)


class ApplicationLayer(Layer):
    """Top layer: the application attachment point."""

    name = "gc_application"

    def __init__(self) -> None:
        super().__init__()
        self.delivered: list[AppMessage] = []
        self.views: list[View] = []
        self._deliver_callbacks: list[Callable[[AppMessage], None]] = []
        self._view_callbacks: list[Callable[[View], None]] = []

    # Application API ---------------------------------------------------
    def gbcast(self, payload: Any, msg_class: str) -> None:
        self.emit_down(GBCAST_REQ, payload=payload, msg_class=msg_class)

    def join(self, pid: str) -> None:
        self.emit_down(JOIN_REQ, pid=pid)

    def remove(self, pid: str) -> None:
        self.emit_down(REMOVE_REQ, pid=pid)

    def on_deliver(self, callback: Callable[[AppMessage], None]) -> None:
        self._deliver_callbacks.append(callback)

    def on_new_view(self, callback: Callable[[View], None]) -> None:
        self._view_callbacks.append(callback)

    # Upward events ------------------------------------------------------
    def on_up(self, event: Event) -> None:
        if event.type == GDELIVER:
            message = event["message"]
            self.delivered.append(message)
            for callback in self._deliver_callbacks:
                callback(message)
            return
        if event.type == NEW_VIEW:
            view = event["view"]
            self.views.append(view)
            for callback in self._view_callbacks:
                callback(view)
            return
        self.pass_on(event)

    def delivered_payloads(self) -> list[Any]:
        return [m.payload for m in self.delivered]


class ComposedNewArchitecture:
    """The Fig. 9 suite, composed via event routing instead of calls."""

    def __init__(
        self,
        process,
        initial_members: list[str],
        conflict: ConflictRelation = RBCAST_ABCAST,
        config: StackConfig | None = None,
    ) -> None:
        self.components = NewArchitectureStack(
            process, initial_members, conflict=conflict, config=config
        )
        self.service = ServiceLayer(self.components)
        self.app = ApplicationLayer()
        self.kernel = StackKernel(
            process,
            self.components.channel,
            [self.service, self.app],
            self.components.membership.current_members,
        )

    @property
    def pid(self) -> str:
        return self.components.pid

    # Convenience passthroughs to the application layer.
    def gbcast(self, payload: Any, msg_class: str) -> None:
        self.app.gbcast(payload, msg_class)

    def delivered_payloads(self) -> list[Any]:
        return self.app.delivered_payloads()

    def view(self) -> View | None:
        return self.components.view()


def build_composed_group(
    world: World,
    count: int,
    conflict: ConflictRelation = RBCAST_ABCAST,
    config: StackConfig | None = None,
) -> dict[str, ComposedNewArchitecture]:
    pids = world.spawn(count)
    return {
        pid: ComposedNewArchitecture(world.process(pid), pids, conflict, config)
        for pid in pids
    }

"""The paper's new architecture: Fig. 9 stack + application facade."""

from repro.core.api import GroupCommunication
from repro.core.composed import ComposedNewArchitecture, build_composed_group
from repro.core.new_stack import NewArchitectureStack, StackConfig, add_joiner, build_new_group

__all__ = [
    "ComposedNewArchitecture",
    "GroupCommunication",
    "NewArchitectureStack",
    "StackConfig",
    "add_joiner",
    "build_composed_group",
    "build_new_group",
]

"""Application facade over the new-architecture stack.

One :class:`GroupCommunication` object per process gives the application
the operations of Fig. 9:

* ``abcast(payload)``   — totally ordered broadcast (routed through the
  generic broadcast component with the conflicting ``abcast`` class, per
  the Section 3.3 conflict table);
* ``rbcast(payload)``   — reliable broadcast (generic broadcast with the
  non-conflicting ``rbcast`` class);
* ``gbcast(payload, msg_class)`` — generic broadcast with a custom class
  from the stack's conflict relation;
* ``join`` / ``leave`` / ``remove`` — membership operations;
* ``on_adeliver`` / ``on_rdeliver`` / ``on_gdeliver`` / ``on_new_view``
  — upward callbacks.

Internal control classes (prefixed ``_``) never reach the application.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.new_stack import NewArchitectureStack
from repro.gbcast.conflict import ABCAST_CLASS, RBCAST_CLASS
from repro.membership.view import View
from repro.net.message import AppMessage, MsgId

DeliverFn = Callable[[AppMessage], None]
NewViewFn = Callable[[View], None]


class GroupCommunication:
    """The application-facing API of one group member."""

    def __init__(self, stack: NewArchitectureStack) -> None:
        self.stack = stack
        self._adeliver: list[DeliverFn] = []
        self._rdeliver: list[DeliverFn] = []
        self._gdeliver: list[DeliverFn] = []
        self.delivered: list[AppMessage] = []
        stack.gbcast.on_gdeliver(self._dispatch)
        stack.membership.on_new_view(self._on_view)
        self._view_callbacks: list[NewViewFn] = []

    # ------------------------------------------------------------------
    # Broadcast operations
    # ------------------------------------------------------------------
    def abcast(self, payload: Any) -> MsgId:
        """Totally ordered broadcast (conflicts with everything)."""
        return self.stack.gbcast.gbcast_payload(payload, ABCAST_CLASS).id

    def rbcast(self, payload: Any) -> MsgId:
        """Reliable broadcast (conflicts with abcasts, not with rbcasts)."""
        return self.stack.gbcast.gbcast_payload(payload, RBCAST_CLASS).id

    def gbcast(self, payload: Any, msg_class: str) -> MsgId:
        """Generic broadcast with an application-defined conflict class."""
        return self.stack.gbcast.gbcast_payload(payload, msg_class).id

    # ------------------------------------------------------------------
    # Membership operations
    # ------------------------------------------------------------------
    def join(self, pid: str) -> None:
        self.stack.membership.join(pid)

    def remove(self, pid: str) -> None:
        self.stack.membership.remove(pid)

    def leave(self) -> None:
        self.stack.membership.remove(self.pid)

    def request_join(self, seed: str) -> None:
        self.stack.membership.request_join(seed)

    @property
    def view(self) -> View | None:
        return self.stack.view()

    @property
    def pid(self) -> str:
        return self.stack.pid

    # ------------------------------------------------------------------
    # Callbacks
    # ------------------------------------------------------------------
    def on_adeliver(self, callback: DeliverFn) -> None:
        self._adeliver.append(callback)

    def on_rdeliver(self, callback: DeliverFn) -> None:
        self._rdeliver.append(callback)

    def on_gdeliver(self, callback: DeliverFn) -> None:
        """Fires for every application message, whatever its class."""
        self._gdeliver.append(callback)

    def on_new_view(self, callback: NewViewFn) -> None:
        self._view_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, message: AppMessage) -> None:
        if message.msg_class.startswith("_"):
            return  # internal control traffic
        self.delivered.append(message)
        for callback in self._gdeliver:
            callback(message)
        if message.msg_class == ABCAST_CLASS:
            for callback in self._adeliver:
                callback(message)
        elif message.msg_class == RBCAST_CLASS:
            for callback in self._rdeliver:
                callback(message)

    def _on_view(self, view: View) -> None:
        for callback in self._view_callbacks:
            callback(view)

    def delivered_payloads(self) -> list[Any]:
        return [m.payload for m in self.delivered]

"""The paper's new architecture, wired exactly as in Fig. 9.

Bottom to top on every process:

    unreliable transport            (repro.net.transport, owned by the world)
    reliable channel                (repro.net.reliable)
    failure detection               (repro.fd.heartbeat, multi-timeout monitors)
    consensus                       (repro.consensus.chandra_toueg)
    atomic broadcast                (repro.abcast.consensus_based)
    generic broadcast               (repro.gbcast.thrifty)
    group membership + monitoring   (repro.membership, repro.monitoring)
    application                     (repro.core.api.GroupCommunication)

Dependency direction follows Fig. 9: atomic broadcast relies only on
consensus and reliable broadcast (NOT on membership); membership is a
*client* of atomic broadcast; exclusion decisions are made by the
monitoring component; suspicion and exclusion use distinct timeouts
(small for consensus/generic broadcast progress, large for exclusion —
Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.abcast.consensus_based import ConsensusAtomicBroadcast
from repro.broadcast.rbcast import ReliableBroadcast
from repro.consensus.chandra_toueg import ChandraTouegConsensus
from repro.fd.heartbeat import HeartbeatFailureDetector
from repro.gbcast.conflict import RBCAST_ABCAST, ConflictRelation
from repro.gbcast.quorum import QuorumGenericBroadcast
from repro.gbcast.thrifty import ThriftyGenericBroadcast
from repro.membership.abcast_membership import AbcastGroupMembership
from repro.membership.view import View
from repro.monitoring.component import MonitoringComponent, MonitoringPolicy
from repro.net.reliable import ReliableChannel
from repro.sim.process import Process
from repro.sim.world import World


@dataclass(frozen=True)
class StackConfig:
    """Tuning knobs of the new-architecture stack.

    The two timeouts embody Section 3.3.2: ``suspicion_timeout`` is the
    *small* timeout used by consensus and generic broadcast to make
    progress past a silent process; ``monitoring.exclusion_timeout`` is
    the *large* timeout after which the monitoring component actually
    excludes it.
    """

    heartbeat_interval: float = 10.0
    #: Traffic-aware failure detection: with ``fd_suppression`` on, the
    #: per-peer explicit heartbeat is skipped whenever any datagram went
    #: to that peer within ``hb_idle_factor * heartbeat_interval`` ms —
    #: outbound traffic already proves our liveness, and the transport's
    #: liveness tap plus the reliable channel's piggybacked hb-epoch
    #: headers keep detection latency and adaptive timeout estimation
    #: unchanged.  Heartbeats become the idle-link fallback: the FD's
    #: wire cost per delivery goes to ~0 as load rises.  The traditional
    #: stacks build their FDs with suppression off, preserving the
    #: paper's constant heartbeat stream for the comparison benches.
    fd_suppression: bool = True
    hb_idle_factor: float = 1.0
    suspicion_timeout: float = 60.0
    retransmit_interval: float = 20.0
    stuck_timeout: float = 1_000.0
    fast_path_timeout: float = 250.0
    #: Consensus pipelining window for atomic broadcast: up to this many
    #: consensus instances run concurrently (1 = classic serial mode).
    #: The window automatically collapses to 1 while a membership ctl op
    #: is pending (see ``repro.abcast.consensus_based``).
    abcast_window: int = 1
    #: Cap on messages per consensus proposal batch (None = unlimited).
    #: With ``abcast_window > 1`` a burst splits across concurrent
    #: instances instead of riding one giant batch.
    abcast_max_batch: int | None = None
    #: Generic-broadcast ack piggybacking: flush delay (ms) and max acks
    #: per datagram.  0.0 coalesces only within one event cascade.
    ack_delay: float = 0.0
    max_ack_batch: int = 32
    #: Reliable-broadcast relay policy: ``"eager"`` relays every packet
    #: on first receipt (O(n²) datagrams per broadcast, maximally crash
    #: tolerant at all times); ``"lazy"`` relays only for origins the FD
    #: currently suspects, flooding retained packets when a suspicion
    #: arises — same delivery guarantee, O(n) datagrams in the
    #: failure-free case.
    relay_policy: str = "eager"
    #: Payload dissemination overlay (``repro.net.overlay``): ``"flood"``
    #: has the origin unicast every rbcast packet to all n−1 members
    #: (pre-overlay behaviour, byte-identical); ``"ring"`` routes each
    #: packet along the sorted member ring rotated to the origin, every
    #: node sending each body at most once; ``"tree"`` routes down a
    #: deterministic k-ary tree rooted at the origin (fan-out
    #: ``tree_fanout``, latency O(log_k n) hops).  Ring/tree re-route
    #: around FD-suspected members and fall back to a retained-packet
    #: flood on suspicion edges, so the rbcast delivery guarantee is
    #: unchanged.
    dissemination: str = "flood"
    #: Fan-out k of the ``"tree"`` dissemination overlay.
    tree_fanout: int = 2
    #: Reliable-channel send coalescing: segments to the same peer
    #: within this window (ms) ride one datagram, and ACKs are delayed
    #: and cumulative over the same window.  None disables coalescing
    #: (every segment is its own datagram, ACKed immediately).
    coalesce_delay: float | None = None
    #: Max DATA segments packed into one coalesced datagram.
    max_segment_batch: int = 8
    monitoring: MonitoringPolicy = field(default_factory=MonitoringPolicy)
    #: Use the quorum (n - floor((n-1)/3)) fast path of Aguilera et al. [1]
    #: instead of the all-ack fast path: with n > 3f the fast path keeps
    #: working through up to f crashes, at the cost of a gather round on
    #: stage closure.
    quorum_fast_path: bool = False
    #: Consensus round-0 fast path: the round-0 coordinator proposes its
    #: own value immediately (no majority estimate read, no self-ESTIMATE,
    #: implicit self-ACK, local decide at majority ACK) — one message
    #: delay less per instance on the decision critical path.  Safe
    #: because no value can be locked before round 0's first PROPOSE; see
    #: ``repro.consensus.chandra_toueg``.  On by default for the new
    #: stack; the traditional baselines construct their consensus directly
    #: and stay on the classic three-phase round.
    consensus_fast_path: bool = True


class NewArchitectureStack:
    """All Fig. 9 components of one process, wired together."""

    def __init__(
        self,
        process: Process,
        initial_members: list[str],
        conflict: ConflictRelation = RBCAST_ABCAST,
        config: StackConfig | None = None,
        is_member: bool = True,
    ) -> None:
        self.process = process
        self.config = config or StackConfig()
        self.conflict = conflict
        cfg = self.config

        initial_view = View.initial(initial_members) if is_member else None

        self.channel = ReliableChannel(
            process,
            retransmit_interval=cfg.retransmit_interval,
            stuck_timeout=cfg.stuck_timeout,
            coalesce_delay=cfg.coalesce_delay,
            max_segment_batch=cfg.max_segment_batch,
        )
        # Group provider closure: resolved through the membership
        # component created below (late binding keeps Fig. 9's dependency
        # arrows intact — abcast never *calls* membership logic, it only
        # reads the current member list).
        members = lambda: self.membership.current_members()

        self.fd = HeartbeatFailureDetector(
            process,
            members,
            heartbeat_interval=cfg.heartbeat_interval,
            suppression=cfg.fd_suppression,
            hb_idle_factor=cfg.hb_idle_factor,
        )
        # Piggybacked heartbeat headers: the channel stamps outgoing
        # datagrams with the FD's hb-epoch and feeds received epochs
        # back, so the adaptive estimator keeps getting one arrival
        # sample per heartbeat period under suppression.
        self.channel.hb_epoch_provider = self.fd.current_hb_epoch
        self.channel.hb_sample_sink = self.fd.note_piggyback_sample
        self.rbcast = ReliableBroadcast(
            process,
            self.channel,
            members,
            relay_policy=cfg.relay_policy,
            dissemination=cfg.dissemination,
            tree_fanout=cfg.tree_fanout,
        )
        self.consensus = ChandraTouegConsensus(
            process,
            self.channel,
            self.rbcast,
            self.fd,
            suspicion_timeout=cfg.suspicion_timeout,
            fast_path=cfg.consensus_fast_path,
        )
        self.abcast = ConsensusAtomicBroadcast(
            process,
            self.rbcast,
            self.consensus,
            members,
            window=cfg.abcast_window,
            max_batch=cfg.abcast_max_batch,
        )
        # Dissemination GC must respect ordering: rbcast may not prune a
        # packet whose id rides a proposed-but-undecided instance (the
        # relay/repair material for decide-before-dissemination windows).
        self.rbcast.retention_pin = self.abcast.rb_retention_pin
        self.membership = AbcastGroupMembership(process, self.channel, self.abcast, initial_view)
        gbcast_class = QuorumGenericBroadcast if cfg.quorum_fast_path else ThriftyGenericBroadcast
        self.gbcast = gbcast_class(
            process,
            self.channel,
            self.rbcast,
            self.abcast,
            conflict,
            members,
            fast_path_timeout=cfg.fast_path_timeout,
            ack_delay=cfg.ack_delay,
            max_ack_batch=cfg.max_ack_batch,
        )
        self.monitoring = MonitoringComponent(
            process, self.fd, self.membership, self.channel, cfg.monitoring
        )
        # Joiners and recovered incarnations resume mid-stream: the
        # state-transfer snapshot must carry the generic broadcast stage
        # and the rbcast stability watermarks alongside the abcast
        # position (registration order == installation order).
        self.membership.register_snapshot(
            "rbcast", self.rbcast.snapshot, self.rbcast.install_snapshot
        )
        self.membership.register_snapshot(
            "gbcast", self.gbcast.snapshot, self.gbcast.install_snapshot
        )
        # A small-timeout monitor unblocks the generic broadcast fast
        # path when a member goes silent (suspicion != exclusion), and —
        # under the lazy relay policy — triggers rbcast's retained-packet
        # flood for the suspected origin.
        def on_suspect(q: str) -> None:
            self.gbcast.nudge()
            self.rbcast.peer_suspected(q)

        self.suspicion_monitor = self.fd.monitor(
            members, cfg.suspicion_timeout, on_suspect=on_suspect
        )
        self.gbcast.suspicion_provider = lambda: self.suspicion_monitor.suspects
        self.rbcast.suspicion_provider = lambda: self.suspicion_monitor.suspects

    @property
    def pid(self) -> str:
        return self.process.pid

    def view(self) -> View | None:
        return self.membership.current_view()


def build_new_group(
    world: World,
    count: int,
    conflict: ConflictRelation = RBCAST_ABCAST,
    config: StackConfig | None = None,
) -> dict[str, NewArchitectureStack]:
    """Spawn ``count`` processes, each running the full Fig. 9 stack."""
    pids = world.spawn(count)
    stacks = {}
    for pid in pids:
        stacks[pid] = NewArchitectureStack(
            world.process(pid), pids, conflict=conflict, config=config
        )
    return stacks


def add_joiner(
    world: World,
    stacks: dict[str, NewArchitectureStack],
    conflict: ConflictRelation = RBCAST_ABCAST,
    config: StackConfig | None = None,
) -> NewArchitectureStack:
    """Create a fresh process outside the group, ready to request_join."""
    index = len(world.processes)
    (pid,) = world.spawn(1, start_index=index)
    stack = NewArchitectureStack(
        world.process(pid), [], conflict=conflict, config=config, is_member=False
    )
    stacks[pid] = stack
    return stack


RebuildHook = Callable[[str, NewArchitectureStack], None]


def enable_recovery(
    world: World,
    stacks: dict[str, NewArchitectureStack],
    conflict: ConflictRelation = RBCAST_ABCAST,
    config: StackConfig | None = None,
    rejoin_interval: float = 250.0,
    on_rebuild: RebuildHook | None = None,
) -> None:
    """Arm ``World.recover`` for every stack in ``stacks``.

    Registers a recovery factory per process: when ``world.recover(pid)``
    fires, a fresh Fig. 9 stack is built on the re-incarnated process
    (``is_member=False`` — its volatile state, including the view, is
    gone) and the process rejoins through the abcast-based membership.
    Rejoin requests are retried every ``rejoin_interval`` ms, cycling
    through the currently-alive peers as sponsor seeds, until a state
    snapshot arrives and a view is installed.

    ``on_rebuild(pid, stack)`` lets the application re-attach its own
    components (facade, replicas, delivery taps) to the new stack — the
    old incarnation's objects are dead and must not be reused.
    """

    def factory(process) -> NewArchitectureStack:
        pid = process.pid
        stack = NewArchitectureStack(
            process, [], conflict=conflict, config=config, is_member=False
        )
        stacks[pid] = stack
        if on_rebuild is not None:
            on_rebuild(pid, stack)
        _schedule_rejoin(world, stack, rejoin_interval)
        return stack

    for pid in list(stacks):
        world.set_recovery_factory(pid, factory)


def _schedule_rejoin(world: World, stack: NewArchitectureStack, interval: float) -> None:
    """Ask alive peers, round-robin, to sponsor our join until it lands."""
    attempt_no = {"n": 0}

    def attempt() -> None:
        view = stack.membership.view
        if view is not None and stack.pid in view:
            return  # joined (or re-admitted); stop retrying
        seeds = [
            pid
            for pid in sorted(world.processes)
            if pid != stack.pid and not world.processes[pid].crashed
        ]
        if seeds:
            seed = seeds[attempt_no["n"] % len(seeds)]
            attempt_no["n"] += 1
            stack.membership.request_join(seed)
        stack.process.schedule(interval, attempt)

    stack.process.schedule(0.0, attempt)

"""Entry points: ``python -m repro [selfcheck|explore|trace]``.

``selfcheck`` (the default) runs a short deterministic scenario over the
new architecture — mixed broadcast traffic, a crash, an exclusion, then
a crash-recovery rejoin — and validates the full invariant battery with
:mod:`repro.checkers`.  Exits non-zero on any violation.  Useful as a
smoke test of an installation.

``explore`` runs the adversarial schedule explorer / fault fuzzer; see
:mod:`repro.explore.cli`.

``trace`` replays an explore repro artifact with causal span tracing
and renders the critical-path attribution (optionally exporting a
Chrome-trace JSON); see :mod:`repro.explore.trace_cli`.
"""

from __future__ import annotations

import sys

from repro.checkers import app_history, check_all
from repro.core.api import GroupCommunication
from repro.core.new_stack import StackConfig, build_new_group, enable_recovery
from repro.gbcast.conflict import RBCAST_ABCAST
from repro.monitoring.component import MonitoringPolicy
from repro.sim.world import World


def selfcheck(seed: int = 1, verbose: bool = True) -> bool:
    config = StackConfig(monitoring=MonitoringPolicy(exclusion_timeout=600.0))
    world = World(seed=seed)
    stacks = build_new_group(world, 4, config=config)
    apis = {pid: GroupCommunication(s) for pid, s in stacks.items()}
    world.start()

    for i in range(8):
        apis["p00"].abcast(("a", i))
        apis["p01"].rbcast(("r", i))
    ok = world.run_until(
        lambda: all(len(a.delivered) == 16 for a in apis.values()), timeout=60_000
    )
    world.crash("p03")
    apis["p02"].abcast("post-crash")
    survivors = ["p00", "p01", "p02"]
    ok &= world.run_until(
        lambda: all(
            "post-crash" in apis[p].delivered_payloads() for p in survivors
        ),
        timeout=60_000,
    )
    ok &= world.run_until(
        lambda: all("p03" not in apis[p].view for p in survivors), timeout=60_000
    )

    # Crash-recovery leg: p03 comes back as a fresh incarnation, rejoins
    # through membership, and delivers new traffic with everyone else.
    enable_recovery(
        world,
        stacks,
        config=config,
        on_rebuild=lambda pid, stack: apis.__setitem__(pid, GroupCommunication(stack)),
    )
    world.recover("p03")
    ok &= world.run_until(
        lambda: all("p03" in (apis[p].view or ()) for p in apis), timeout=60_000
    )
    apis["p00"].abcast("post-recover")
    ok &= world.run_until(
        lambda: all("post-recover" in a.delivered_payloads() for a in apis.values()),
        timeout=60_000,
    )

    history = {pid: app_history(stacks[pid]) for pid in survivors}
    result = check_all(history, relation=RBCAST_ABCAST)
    if verbose:
        print(f"seed {seed}: delivered={len(history['p00'])} per survivor, "
              f"view={apis['p00'].view}, "
              f"consensus={world.metrics.counters.get('consensus.decided')} decisions")
        if not ok:
            print("  TIMEOUT: scenario did not converge")
        for violation in result.violations:
            print(f"  VIOLATION: {violation}")
    return ok and bool(result)


def main(argv: list[str]) -> int:
    if argv and argv[0] == "explore":
        from repro.explore.cli import main as explore_main

        return explore_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.explore.trace_cli import main as trace_main

        return trace_main(argv[1:])
    # Accept an optional "selfcheck" subcommand word (the CI invocation
    # is `python -m repro selfcheck`); remaining args are seeds.
    if argv and argv[0] == "selfcheck":
        argv = argv[1:]
    seeds = [int(a) for a in argv] or [1, 2, 3]
    print("repro self-check: new-architecture lifecycle + invariant battery")
    failures = 0
    for seed in seeds:
        if not selfcheck(seed):
            failures += 1
    if failures:
        print(f"FAILED: {failures}/{len(seeds)} seeds")
        return 1
    print(f"OK: {len(seeds)}/{len(seeds)} seeds passed "
          "(integrity, agreement, FIFO, conflict order)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Passive replication with generic broadcast — the Fig. 8 scenario.

Run with:  python examples/passive_replication.py

A primary-backup key-value service over the update/primary-change
conflict relation (Section 3.2.3).  We crash the primary mid-run: the
backups suspect it on a SMALL timeout and g-broadcast primary-change,
which merely rotates the server list [s1;s2;s3] -> [s2;s3;s1] — the old
primary is NOT excluded from the group (exclusion would need the
monitoring component's much larger timeout).  The client times out,
learns the new primary, re-issues its request, and the service answers.
"""

from repro import PASSIVE_REPLICATION, World
from repro.core.new_stack import StackConfig, build_new_group
from repro.monitoring.component import MonitoringPolicy
from repro.replication.client import spawn_client
from repro.replication.primary_backup import attach_passive_replicas


def apply_kv(state, command):
    key, value = command
    new_state = dict(state)
    new_state[key] = value
    return new_state, ("stored", key, value)


def main() -> None:
    config = StackConfig(
        suspicion_timeout=80.0,
        monitoring=MonitoringPolicy(exclusion_timeout=60_000.0),  # huge: no exclusions
    )
    world = World(seed=5)
    stacks = build_new_group(world, 3, conflict=PASSIVE_REPLICATION, config=config)
    replicas = attach_passive_replicas(stacks, apply_kv, {}, primary_suspicion_timeout=120.0)
    client = spawn_client(world, sorted(stacks), mode="primary", retry_timeout=400.0)
    world.start()

    results = []
    client.submit(("colour", "blue"), callback=results.append, label="before")
    world.run_for(2_000.0)
    print("before crash:", results)
    print("  server lists:", {pid: r.server_list for pid, r in replicas.items()})

    print("\n-- crashing the primary p00 --")
    world.crash("p00")
    client.submit(("colour", "green"), callback=results.append, label="after")
    world.run_for(5_000.0)

    print("after crash :", results)
    survivors = {pid: r for pid, r in replicas.items() if pid != "p00"}
    print("  server lists:", {pid: r.server_list for pid, r in survivors.items()})
    print("  epochs      :", {pid: r.epoch for pid, r in survivors.items()})
    print("  states      :", {pid: r.state for pid, r in survivors.items()})
    view = stacks["p01"].membership.view
    print(f"  membership view is still {view} — p00 was demoted, not excluded")
    print(f"  client retries: {world.metrics.counters.get('client.retries')}")
    print(f"  consensus ran {world.metrics.counters.get('consensus.proposals')} times "
          f"(only for the conflicting primary-change)")
    assert len(results) == 2
    assert all(r.state.get("colour") == "green" for r in survivors.values())


if __name__ == "__main__":
    main()

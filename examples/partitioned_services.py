"""The Phoenix S/S' partition scenario (Section 2.1.2).

Run with:  python examples/partitioned_services.py

Two independent replicated services S and S' (three replicas each),
membership at the *process* level (Phoenix).  A network partition puts
the majority of S in component Pi1 and the majority of S' in component
Pi2.  Both services keep processing updates in their own majority
component — the improvement Phoenix brought over Isis's processor-level
membership, and a behaviour the new architecture inherits.
"""

from repro.net.topology import LinkModel
from repro.sim.world import World
from repro.traditional.phoenix import PhoenixConfig, build_phoenix_group



def main() -> None:
    world = World(seed=9, default_link=LinkModel(1.0, 1.0))
    config = PhoenixConfig(exclusion_timeout=250.0)
    service_s = build_phoenix_group(world, 3, config=config)               # p00 p01 p02
    service_sp = build_phoenix_group(world, 3, config=config, start_index=3)  # p03 p04 p05
    world.start()
    world.run_for(100.0)

    pi1 = ["p00", "p01", "p03"]
    pi2 = ["p02", "p04", "p05"]
    print(f"partitioning: Pi1={pi1}  Pi2={pi2}")
    world.split([pi1, pi2])

    # S has majority {p00,p01} in Pi1; S' has majority {p04,p05} in Pi2.
    service_s["p00"].abcast_payload("S: update during partition")
    service_sp["p04"].abcast_payload("S': update during partition")

    ok = world.run_until(
        lambda: "S: update during partition" in service_s["p01"].delivered_payloads()
        and "S': update during partition" in service_sp["p05"].delivered_payloads(),
        timeout=60_000,
    )
    assert ok, "one of the services failed to progress during the partition"

    print("\nduring the partition:")
    print(f"  service S  view (majority side): {service_s['p00'].view()}")
    print(f"  service S' view (majority side): {service_sp['p04'].view()}")
    print(f"  S  delivered at p01: {service_s['p01'].delivered_payloads()}")
    print(f"  S' delivered at p05: {service_sp['p05'].delivered_payloads()}")
    print(
        "\nBoth services progressed in different network components — "
        "process-level membership at work (Section 2.1.2)."
    )


if __name__ == "__main__":
    main()

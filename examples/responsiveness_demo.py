"""Section 4.3 demo: post-crash responsiveness, new vs. traditional stack.

Run with:  python examples/responsiveness_demo.py

Both stacks run the same scenario: a member crashes, then a survivor
atomically broadcasts.  The new architecture resumes after the SMALL
suspicion timeout (consensus just routes around the dead coordinator; no
exclusion is needed).  The Isis-style traditional stack cannot order
anything until its single (large) failure-detection timeout fires and the
membership excludes the crashed process — so its post-crash latency is
the exclusion timeout plus a flush.
"""

from repro import World
from repro.core.new_stack import StackConfig, build_new_group
from repro.monitoring.component import MonitoringPolicy
from repro.traditional.isis import IsisConfig, build_isis_group



def new_architecture_post_crash_latency(suspicion_timeout):
    world = World(seed=3)
    config = StackConfig(
        suspicion_timeout=suspicion_timeout,
        monitoring=MonitoringPolicy(exclusion_timeout=120_000.0),
    )
    stacks = build_new_group(world, 3, config=config)
    world.start()
    world.run_for(200.0)
    world.crash("p00")  # round-0 consensus coordinator
    start = world.now
    stacks["p01"].gbcast.gbcast_payload("urgent", "abcast")
    delivered = lambda: any(
        m.payload == "urgent" for m, _p in stacks["p01"].gbcast.delivered_log
    )
    assert world.run_until(delivered, timeout=120_000)
    return world.now - start


def isis_post_crash_latency(exclusion_timeout):
    world = World(seed=3)
    stacks = build_isis_group(world, 3, config=IsisConfig(exclusion_timeout=exclusion_timeout))
    world.start()
    world.run_for(200.0)
    world.crash("p00")  # the sequencer
    start = world.now
    stacks["p01"].abcast_payload("urgent")
    delivered = lambda: "urgent" in stacks["p01"].delivered_payloads()
    assert world.run_until(delivered, timeout=240_000)
    return world.now - start


def false_suspicion_cost(timeout, silence=600.0):
    """A correct member goes silent for ``silence`` ms (e.g. GC pause).

    Returns (new-architecture kills, Isis kills): did the false suspicion
    destroy a correct process?
    """
    from repro.net.topology import LinkModel

    def silence_member(world, pid, peers):
        for dst in peers:
            world.transport.set_link(pid, dst, LinkModel(1.0, 1.0, drop_prob=1.0))
        world.scheduler.at(
            world.now + silence,
            lambda: [
                world.transport.set_link(pid, dst, LinkModel(1.0, 1.0)) for dst in peers
            ],
        )

    world = World(seed=4)
    config = StackConfig(
        suspicion_timeout=timeout,
        monitoring=MonitoringPolicy(exclusion_timeout=10 * max(timeout, silence)),
    )
    build_new_group(world, 3, config=config)
    world.start()
    world.run_for(200.0)
    silence_member(world, "p02", ["p00", "p01"])
    world.run_for(5 * silence)
    new_killed = int(world.processes["p02"].crashed)
    new_excluded = world.metrics.counters.get("monitoring.exclusions_requested")

    world2 = World(seed=4)
    build_isis_group(world2, 3, config=IsisConfig(exclusion_timeout=timeout))
    world2.start()
    world2.run_for(200.0)
    silence_member(world2, "p02", ["p00", "p01"])
    world2.run_for(5 * silence)
    isis_killed = world2.metrics.counters.get("tgm.self_kills")
    return new_killed + new_excluded, isis_killed


def main() -> None:
    print("Part 1 — post-crash abcast latency tracks the FD timeout in both stacks:\n")
    print(f"{'failure detection timeout':>28} | {'new architecture':>17} | {'Isis (traditional)':>19}")
    print("-" * 72)
    for timeout in (50.0, 200.0, 1_000.0):
        new = new_architecture_post_crash_latency(timeout)
        isis = isis_post_crash_latency(timeout)
        print(f"{timeout:>25.0f} ms | {new:>14.1f} ms | {isis:>16.1f} ms")

    print(
        "\nPart 2 — but what does a FALSE suspicion cost?  A correct member\n"
        "goes silent for 600 ms (network hiccup), with a 200 ms timeout:\n"
    )
    new_cost, isis_cost = false_suspicion_cost(200.0)
    print(f"  new architecture : {new_cost} correct processes excluded/killed")
    print(f"  Isis             : {isis_cost} correct process KILLED (exclusion + re-join needed)")
    print(
        "\nThat asymmetry is Section 4.3: the traditional stack must keep its\n"
        "single timeout ABOVE the worst silent period (here >= 1000 ms, paying\n"
        f"~{isis_post_crash_latency(1_000.0):.0f} ms after every real crash), while the new architecture\n"
        f"safely runs a 200 ms suspicion timeout (~{new_architecture_post_crash_latency(200.0):.0f} ms post-crash latency)\n"
        "because suspicion does not imply exclusion."
    )


if __name__ == "__main__":
    main()

"""The Section 4.2 bank account: generic broadcast vs. atomic-for-everything.

Run with:  python examples/bank_account.py

Deposits commute, withdrawals don't.  With generic broadcast and the
deposit/withdrawal conflict relation, deposits take the two-step fast
path and consensus runs only when a withdrawal is in flight.  The
traditional alternative — atomic broadcast for everything — pays the
ordering cost on every operation.  Both give identical, consistent
balances; the difference is the price.
"""

from repro import World, bank_relation, ConflictRelation
from repro.core.new_stack import build_new_group
from repro.replication.bank import attach_bank_replicas, bank_audit
from repro.replication.client import spawn_client


def run(label, conflict):
    world = World(seed=11)
    stacks = build_new_group(world, 3, conflict=conflict)
    replicas = attach_bank_replicas(stacks, initial_balance=100)
    clients = [
        spawn_client(world, sorted(stacks), mode="primary", retry_timeout=800.0)
        for _ in range(2)
    ]
    world.start()

    # Mostly deposits, one withdrawal burst.
    for client in clients:
        for i in range(8):
            client.submit(("deposit", 5), label="deposit")
        client.submit(("withdraw", 30), label="withdraw")

    world.run_for(20_000.0)
    audit = bank_audit(replicas)
    assert audit["consistent"], audit
    counters = world.metrics.counters
    print(f"\n== {label} ==")
    print(f"  final balances        : {audit['balances']}  (consistent)")
    print(f"  consensus proposals   : {counters.get('consensus.proposals')}")
    print(f"  gbcast fast deliveries: {counters.get('gbcast.delivered.fast')}")
    print(f"  deposit latency       : {world.metrics.latency.stats('request.deposit')}")
    print(f"  withdraw latency      : {world.metrics.latency.stats('request.withdraw')}")


def main() -> None:
    run("generic broadcast (deposits commute)", bank_relation())
    run("traditional: atomic broadcast for everything", ConflictRelation.always())
    print(
        "\nSame balances, different cost: with generic broadcast the "
        "commutative deposits skip consensus entirely (Section 4.2)."
    )


if __name__ == "__main__":
    main()

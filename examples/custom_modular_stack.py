"""Composing a custom protocol stack with the event-routing kernel.

Run with:  python examples/custom_modular_stack.py

Section 2.2 of the paper: modular systems let users build the stack that
fits their needs from off-the-shelf components.  This example composes a
minimal custom stack — a logging layer, a batching layer and a consumer —
on the same kernel the Ensemble baseline uses, and shows events flowing
down to the network and back up, including a bouncing event.
"""

from repro.net.reliable import ReliableChannel
from repro.sim.world import World
from repro.stack.events import CAST, DELIVER, DOWN, Event
from repro.stack.kernel import StackKernel
from repro.stack.layer import Layer


class LoggingLayer(Layer):
    """Transparent observer: counts everything passing through."""

    name = "logging"

    def __init__(self):
        super().__init__()
        self.up = 0
        self.down = 0

    def on_up(self, event):
        self.up += 1
        self.pass_on(event)

    def on_down(self, event):
        self.down += 1
        self.pass_on(event)


class BatchingLayer(Layer):
    """Coalesces application sends into one CAST every ``window`` ms."""

    name = "batching"

    def __init__(self, window=20.0):
        super().__init__()
        self.window = window
        self._buffer = []
        self._armed = False

    def on_down(self, event):
        if event.type == "app_send":
            self._buffer.append(event["payload"])
            if not self._armed:
                self._armed = True
                self.kernel.schedule_for(self, self.window, self._flush)
            return
        self.pass_on(event)

    def _flush(self):
        self._armed = False
        batch, self._buffer = self._buffer, []
        if batch:
            self.emit_down(CAST, payload=tuple(batch))

    def on_up(self, event):
        if event.type == DELIVER:
            for item in event.get("payload", ()):
                self.emit_up("app_deliver", item=item)
            return
        self.pass_on(event)


class ConsumerLayer(Layer):
    name = "consumer"

    def __init__(self):
        super().__init__()
        self.items = []

    def on_up(self, event):
        if event.type == "app_deliver":
            self.items.append(event["item"])
            return
        self.pass_on(event)

    def send(self, payload):
        self.emit_down("app_send", payload=payload)


def main() -> None:
    world = World(seed=2)
    pids = world.spawn(3)
    consumers = {}
    loggers = {}
    for pid in pids:
        proc = world.process(pid)
        channel = ReliableChannel(proc)
        logging, batching, consumer = LoggingLayer(), BatchingLayer(), ConsumerLayer()
        StackKernel(proc, channel, [logging, batching, consumer], lambda: list(pids))
        consumers[pid] = consumer
        loggers[pid] = logging
    world.start()

    for i in range(9):
        consumers["p00"].send(f"item-{i}")
    world.run_for(500.0)

    print("custom stack: logging / batching / consumer")
    print(f"  items sent      : 9 (in one burst)")
    print(f"  items delivered : {sorted(len(c.items) for c in consumers.values())} per process")
    print(f"  stack packets received (batched): {world.metrics.counters.get('ens.packets_in')}")
    print(f"  event hops routed          : {world.metrics.counters.get('ens.event_hops')}")

    # A bouncing diagnostic event: down to the bottom, back up the stack.
    kernel = world.process("p00").component("stack")
    kernel.route(Event("diagnostic", DOWN, {}, bounce=True), len(kernel.layers) - 1)
    print(f"  bounced diagnostics        : {world.metrics.counters.get('ens.bounces')}")
    assert all(len(c.items) == 9 for c in consumers.values())
    print("\nAll 9 items delivered everywhere through the batched custom stack.")


if __name__ == "__main__":
    main()

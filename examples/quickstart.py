"""Quickstart: a three-member group using the new architecture (Fig. 9).

Run with:  python examples/quickstart.py

Shows the three broadcast flavours of the application interface —
``abcast`` (totally ordered), ``rbcast`` (unordered, cheap), ``gbcast``
with a custom conflict class — plus a membership change, all over the
paper's AB-GB stack (atomic broadcast at the bottom, generic broadcast
instead of view synchrony, membership on top).
"""

from repro import GroupCommunication, World, build_new_group


def main() -> None:
    world = World(seed=7)
    stacks = build_new_group(world, 3)
    apis = {pid: GroupCommunication(stack) for pid, stack in stacks.items()}
    world.start()

    print("== initial view ==")
    print(" ", apis["p00"].view)

    # Totally ordered traffic from two senders...
    for i in range(3):
        apis["p00"].abcast(f"order-me-{i}")
        apis["p01"].abcast(f"me-too-{i}")
    # ...and unordered reliable traffic, which never touches consensus.
    apis["p02"].rbcast("fyi: cheap and unordered")

    world.run_for(2_000.0)

    print("\n== delivered (per process) ==")
    for pid, api in apis.items():
        print(f"  {pid}: {api.delivered_payloads()}")

    ordered = [
        [m.payload for m in api.delivered if m.msg_class == "abcast"]
        for api in apis.values()
    ]
    assert ordered[0] == ordered[1] == ordered[2], "total order violated?!"
    print("\nabcast total order identical at all members:", ordered[0])

    # Membership rides on atomic broadcast: remove a member.
    apis["p00"].remove("p02")
    world.run_for(2_000.0)
    print("\n== view after remove(p02) ==")
    print(" ", apis["p00"].view)

    counters = world.metrics.counters
    print("\n== stack internals ==")
    print(f"  consensus instances run : {counters.get('consensus.decided')}")
    print(f"  gbcast fast deliveries  : {counters.get('gbcast.delivered.fast')}")
    print(f"  gbcast via closure      : {counters.get('gbcast.delivered.closure')}")
    print(f"  datagrams on the wire   : {counters.get('net.sent')}")
    print("\nabcast latency:", world.metrics.latency.stats("gbcast.abcast"))
    print("rbcast latency:", world.metrics.latency.stats("gbcast.rbcast"))


if __name__ == "__main__":
    main()

"""Active vs. passive replication on the new architecture (Section 3.2.2).

Run with:  python examples/active_vs_passive.py

The same key-value service replicated two ways over the same stack:

* **active** (state machine [33]): every request is atomically broadcast
  and executed by every replica — higher per-request ordering cost, but
  a replica crash is invisible to clients;
* **passive** (primary-backup over generic broadcast, Fig. 8): only the
  primary executes; updates ride the non-conflicting fast path — cheaper
  per request, but a primary crash costs a (small-timeout) primary
  change before service resumes.

The trade-off in numbers, from one deterministic run each.
"""

from repro import PASSIVE_REPLICATION, World
from repro.core.api import GroupCommunication
from repro.core.new_stack import StackConfig, build_new_group
from repro.monitoring.component import MonitoringPolicy
from repro.replication.client import spawn_client
from repro.replication.primary_backup import attach_passive_replicas
from repro.replication.state_machine import attach_active_replicas


def apply_kv(state, command):
    key, value = command
    new_state = dict(state)
    new_state[key] = value
    return new_state, ("stored", key, value)


def run_active():
    world = World(seed=21)
    stacks = build_new_group(world, 3)
    apis = {pid: GroupCommunication(s) for pid, s in stacks.items()}
    attach_active_replicas(stacks, apis, apply_kv, {})
    client = spawn_client(world, sorted(stacks), mode="all")
    world.start()
    for i in range(10):
        client.submit(("k", i), label="active")
    world.run_until(lambda: len(client.completed) == 10, timeout=120_000)
    # Crash a replica mid-stream; the client should not notice.
    world.crash("p02")
    client.submit(("after-crash", 1), label="active_crash")
    world.run_until(lambda: len(client.completed) == 11, timeout=120_000)
    return world


def run_passive():
    world = World(seed=21)
    config = StackConfig(monitoring=MonitoringPolicy(exclusion_timeout=60_000.0))
    stacks = build_new_group(world, 3, conflict=PASSIVE_REPLICATION, config=config)
    attach_passive_replicas(stacks, apply_kv, {}, primary_suspicion_timeout=120.0)
    client = spawn_client(world, sorted(stacks), mode="primary")
    world.start()
    for i in range(10):
        client.submit(("k", i), label="passive")
    world.run_until(lambda: len(client.completed) == 10, timeout=120_000)
    world.crash("p00")  # the primary!
    client.submit(("after-crash", 1), label="passive_crash")
    world.run_until(lambda: len(client.completed) == 11, timeout=120_000)
    return world


def main() -> None:
    active = run_active()
    passive = run_passive()
    print("active replication (state machine over abcast):")
    print(f"  request latency  : {active.metrics.latency.stats('request.active')}")
    print(f"  after crash      : {active.metrics.latency.stats('request.active_crash')}")
    print(f"  consensus runs   : {active.metrics.counters.get('consensus.proposals')}")
    print("\npassive replication (primary-backup over generic broadcast):")
    print(f"  request latency  : {passive.metrics.latency.stats('request.passive')}")
    print(f"  after PRIMARY crash: {passive.metrics.latency.stats('request.passive_crash')}")
    print(f"  consensus runs   : {passive.metrics.counters.get('consensus.proposals')}")
    print(
        "\nShape: active pays consensus on every request but masks crashes;\n"
        "passive rides the fast path (few/no consensus runs) but pays a\n"
        "primary change — still only a small-timeout suspicion, never an\n"
        "exclusion (Sections 3.2.2-3.2.3)."
    )


if __name__ == "__main__":
    main()

"""Rolling restart: cycle every member through crash + recovery.

Run with:  python examples/rolling_restart.py

Demonstrates the crash-recovery subsystem: each process in turn is
crashed, excluded by the monitoring component, restarted as a fresh
incarnation (``World.recover``), and rejoined through the abcast-based
membership with its replicated state restored by state transfer.  A
replicated counter keeps executing throughout — the group never loses
quorum, and at the end every process (including every recovered one)
holds the identical state.
"""

from repro import (
    GroupCommunication,
    MonitoringPolicy,
    StackConfig,
    World,
    build_new_group,
    enable_recovery,
)
from repro.replication.state_machine import attach_active_replicas, attach_replica
from repro.workload.generators import FaultPlan


def apply_fn(state, command):
    return state + command, state + command


def main() -> None:
    config = StackConfig(monitoring=MonitoringPolicy(exclusion_timeout=300.0))
    world = World(seed=42)
    stacks = build_new_group(world, 3, config=config)
    apis = {pid: GroupCommunication(stack) for pid, stack in stacks.items()}
    replicas = attach_active_replicas(stacks, apis, apply_fn, 0)

    def rebuild(pid, stack):
        # The old incarnation's facade and replica are dead objects:
        # re-attach fresh ones to the rebuilt stack.
        apis[pid] = GroupCommunication(stack)
        replicas[pid] = attach_replica(stack, apis[pid], apply_fn, 0)

    enable_recovery(world, stacks, config=config, on_rebuild=rebuild)
    world.start()

    # One crash → recover cycle per member, never overlapping.
    plan = FaultPlan.rolling_restart(
        list(stacks), start=400.0, downtime=600.0, gap=1_500.0
    )
    plan.apply(world)

    # Steady replicated-command traffic from whoever is up.
    commands = 12
    for i in range(commands):
        t = 100.0 + i * 450.0

        def issue(i=i):
            senders = [p for p in sorted(stacks) if not world.processes[p].crashed]
            apis[senders[i % len(senders)]].abcast(("cmd", "client", i, i + 1))

        world.scheduler.at(t, issue)

    world.run_until(
        lambda: all(len(r.command_log) == commands for r in replicas.values()),
        timeout=60_000,
    )

    print("== after the rolling restart ==")
    for pid in sorted(stacks):
        process = world.processes[pid]
        print(
            f"  {pid}: incarnation={process.incarnation} "
            f"state={replicas[pid].state} view={stacks[pid].membership.view}"
        )

    states = {r.state for r in replicas.values()}
    assert len(states) == 1, "replicas diverged?!"
    assert all(world.processes[pid].incarnation == 1 for pid in stacks)

    counters = world.metrics.counters
    print("\n== recovery internals ==")
    print(f"  recoveries                : {counters.get('world.recoveries')}")
    print(f"  stale datagrams fenced    : {counters.get('net.stale_incarnation_dropped')}")
    print(f"  stale connections dropped : {counters.get('rc.stale_connection_dropped')}")
    print(f"  peer reincarnations seen  : {counters.get('rc.peer_reincarnations')}")
    print(f"  snapshots installed       : {counters.get('replica.snapshots_installed')}")
    print(f"  views installed           : {counters.get('gm.views_installed')}")
    print(f"\nfinal view everywhere: {stacks['p00'].membership.view}")


if __name__ == "__main__":
    main()
